"""The cluster worker agent: one grid node on one host.

Run on any machine that can reach the coordinator::

    python -m repro.cluster.worker --connect HOST:PORT --node NAME

The agent connects over TCP, registers as grid node ``NAME`` with a
:class:`~repro.cluster.protocol.Hello` (host, pid, cpu count), then
executes dispatch requests **serially** — one task at a time, the paper's
process-per-node model — streaming each
:class:`~repro.cluster.protocol.Result` back the moment it completes.
Payload execution and compute-time measurement use the same helpers as the
process backend's workers (:mod:`repro.backends._payload`), so a cluster
node's unit times mean the same thing a local worker process's do.

Work arrives two ways: a legacy :class:`~repro.cluster.protocol.Dispatch`
carries its whole payload by value, while the hot path installs each shared
payload once (:class:`~repro.cluster.protocol.PutPayload`, unpickled to a
per-connection store) and then ships only per-task arguments in
:class:`~repro.cluster.protocol.DispatchRef` frames.  Install and dispatch
frames are executed in arrival order off one queue, so a reference can
never observe a missing payload the coordinator already sent.

Three threads cooperate:

* the **reader** drains the socket and queues dispatches (so a long task
  never stops Goodbye/shutdown frames from being seen),
* the **heartbeat** sender beacons liveness (plus the host's CPU load for
  the monitoring layer) — but only while the agent is *idle*: every Result
  piggybacks the same load observation, so an actively-serving agent sends
  no separate beacons,
* the **main loop** executes queued work serially and sends results.

The agent exits when the coordinator says Goodbye, the connection drops, or
the process is killed.  Payload exceptions are *not* fatal: they are
reported in the Result (pickled when possible) and the agent keeps serving.

Payloads arrive as by-reference pickles, so the modules defining them must
be importable on the worker host (deploy your code to the workers; for
localhost clusters :class:`~repro.cluster.local.LocalCluster` propagates
the parent's ``sys.path`` automatically).  And because unpickling runs
arbitrary code, only ever connect an agent to a coordinator you trust, over
a network you trust.
"""

from __future__ import annotations

import argparse
import importlib.util
import os
import pickle
import queue
import socket
import sys
import threading
import time as _time
import warnings
from typing import Any, Dict, Tuple

from repro.backends._payload import (
    join_payload,
    run_chunk,
    run_payload,
    run_stage,
)
from repro.backends.shm import (
    ShmEnvelope,
    destroy_payload,
    dumps_oob,
    loads_oob,
    probe_size,
)
from repro.cluster.protocol import (
    PROTOCOL_VERSION,
    Dispatch,
    DispatchRef,
    FrameDecoder,
    Goodbye,
    Heartbeat,
    Hello,
    PutPayload,
    Result,
    Welcome,
    encode,
)
from repro.exceptions import ClusterError, ProtocolError
from repro.sanitizers.locks import make_lock

__all__ = ["WorkerAgent", "run_worker", "main"]

_RECV_BYTES = 1 << 16

#: Default seconds between heartbeats.
DEFAULT_HEARTBEAT_INTERVAL = 1.0


class _BrokenPayload:
    """Marker for a shared payload that failed to unpickle on this agent."""

    def __init__(self, reason: str):
        self.reason = reason


def _observed_load() -> float:
    """This host's normalised 1-minute load average, clamped to [0, 0.999)."""
    try:
        load = os.getloadavg()[0] / max(os.cpu_count() or 1, 1)
    except (AttributeError, OSError):  # pragma: no cover - platform dependent
        return 0.0
    return min(max(load, 0.0), 0.999)


def _portable_error(exc: BaseException) -> BaseException:
    """An exception safe to ship in a Result frame.

    The original exception is preferred; one that does not survive a
    pickle round-trip (custom ``__init__`` signatures, unpicklable
    attributes) is replaced by a :class:`ClusterError` carrying its repr.
    """
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return ClusterError(
            f"worker payload raised an unpicklable exception: {exc!r}"
        )


class WorkerAgent:
    """One connected worker agent (see module docstring).

    Parameters
    ----------
    host, port:
        Coordinator address.
    node_id:
        Grid node id this agent serves.
    heartbeat_interval:
        Seconds between liveness beacons.
    connect_timeout:
        Bound on both the TCP connect and the registration handshake.
    shm_threshold:
        Results probing at or above this many bytes are spilled into a
        shared-memory segment and shipped as a descriptor envelope
        instead of inline frame bytes (which also lifts the frame-size
        cap for them).  ``0`` (the default) disables the data plane;
        only enable it for agents on the *coordinator's host* — POSIX
        shared memory does not cross machines.  Effective only when the
        coordinator confirms the capability in its WELCOME.
    """

    def __init__(self, host: str, port: int, node_id: str,
                 heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL,
                 connect_timeout: float = 30.0, shm_threshold: int = 0):
        if not node_id:
            raise ClusterError("worker agents need a non-empty node id")
        self.node_id = node_id
        self.heartbeat_interval = max(0.05, float(heartbeat_interval))
        self.shm_threshold = max(0, int(shm_threshold))
        #: Set at handshake: the coordinator confirmed shm in WELCOME and
        #: this agent wants it — only then do envelopes cross this wire.
        self._shm_active = False
        self._connect_timeout = float(connect_timeout)
        try:
            self._sock = socket.create_connection((host, port),
                                                  timeout=connect_timeout)
        except OSError as exc:
            raise ClusterError(
                f"cannot reach coordinator at {host}:{port} ({exc})"
            ) from exc
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._send_lock = make_lock("worker.send")
        #: Dispatch | DispatchRef | PutPayload | None (= stop), in arrival
        #: order — which is what guarantees install-before-reference.
        self._inbox: "queue.SimpleQueue" = queue.SimpleQueue()
        self._stop = threading.Event()
        #: payload_id -> unpickled shared payload tuple; only the execute
        #: loop touches it, so no lock.
        self._payloads: Dict[int, Any] = {}
        #: monotonic time of the last Result sent; results carry the load
        #: observation, so the heartbeat loop stays quiet while recent
        #: result traffic already proved this agent alive.
        self._last_result = -float("inf")
        # One decoder for the connection's whole life: a Dispatch racing in
        # right behind the WELCOME (the coordinator registers the node
        # before acknowledging) must not be lost between the handshake and
        # the reader loop.
        self._decoder = FrameDecoder()

    # -------------------------------------------------------------- lifecycle
    def serve_forever(self) -> None:
        """Register, then execute dispatches until told to stop."""
        try:
            self._handshake()
            reader = threading.Thread(target=self._reader_loop,
                                      name="grasp-cluster-worker-reader",
                                      daemon=True)
            beats = threading.Thread(target=self._heartbeat_loop,
                                     name="grasp-cluster-worker-heartbeat",
                                     daemon=True)
            reader.start()
            beats.start()
            self._execute_loop()
        finally:
            self._stop.set()
            try:
                self._send(Goodbye(node_id=self.node_id, reason="exiting"))
            except (OSError, ProtocolError):
                pass
            try:
                # Shutdown first so the reader thread blocked in recv()
                # wakes with EOF instead of waiting out the OS timeout.
                self._sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                self._sock.close()
            except OSError:  # pragma: no cover - platform dependent
                pass

    def _handshake(self) -> None:
        self._sock.settimeout(self._connect_timeout)
        self._send(Hello(node_id=self.node_id, host=socket.gethostname(),
                         pid=os.getpid(), cpus=os.cpu_count() or 1,
                         shm=self.shm_threshold > 0))
        welcomed = False
        while not welcomed:
            try:
                data = self._sock.recv(_RECV_BYTES)
            except socket.timeout:
                raise ClusterError(
                    "coordinator did not answer the registration HELLO "
                    "(is that really a GRASP coordinator port?)"
                ) from None
            except OSError as exc:
                raise ClusterError(
                    f"connection lost during registration ({exc})"
                ) from exc
            if not data:
                raise ClusterError(
                    "coordinator closed the connection during registration"
                )
            for message in self._decoder.feed(data):
                if isinstance(message, Welcome):
                    if message.node_id != self.node_id:
                        raise ProtocolError(
                            f"coordinator welcomed {message.node_id!r}, "
                            f"this agent is {self.node_id!r}"
                        )
                    if message.protocol != PROTOCOL_VERSION:
                        raise ProtocolError(
                            f"coordinator speaks message protocol "
                            f"{message.protocol}, this agent speaks "
                            f"{PROTOCOL_VERSION}"
                        )
                    self._shm_active = (self.shm_threshold > 0
                                        and bool(message.shm))
                    welcomed = True
                elif isinstance(message, Goodbye):
                    if welcomed:
                        # Shutdown racing in right behind the ack (a
                        # short-lived cluster): serve out and exit cleanly.
                        self._inbox.put(None)
                    else:
                        raise ClusterError(
                            "coordinator rejected registration: "
                            f"{message.reason}"
                        )
                elif isinstance(message, (Dispatch, DispatchRef, PutPayload)):
                    if not welcomed:
                        raise ProtocolError(
                            f"{type(message).__name__} before WELCOME"
                        )
                    # Work racing in right behind the acknowledgement.
                    self._inbox.put(message)
                else:
                    raise ProtocolError(
                        f"expected WELCOME, got {type(message).__name__}"
                    )
        self._sock.settimeout(None)

    # ------------------------------------------------------------------ loops
    def _reader_loop(self) -> None:
        try:
            while not self._stop.is_set():
                data = self._sock.recv(_RECV_BYTES)
                if not data:
                    break
                for message in self._decoder.feed(data):
                    if isinstance(message, (Dispatch, DispatchRef,
                                            PutPayload)):
                        self._inbox.put(message)
                    elif isinstance(message, Goodbye):
                        self._inbox.put(None)
                        return
                    # Anything else from the coordinator is ignorable noise.
        except (OSError, ProtocolError):
            pass
        self._inbox.put(None)

    def _heartbeat_loop(self) -> None:
        while not self._stop.wait(self.heartbeat_interval):
            if (_time.monotonic() - self._last_result
                    < self.heartbeat_interval):
                # A recent Result already carried the load observation and
                # proved this agent alive: piggybacked heartbeat, no beacon.
                continue
            try:
                self._send(Heartbeat(node_id=self.node_id,
                                     load=_observed_load()))
            except (OSError, ProtocolError):
                return

    def _execute_loop(self) -> None:
        while True:
            request = self._inbox.get()
            if request is None:
                return
            if isinstance(request, PutPayload):
                self._install_payload(request)
                continue
            try:
                payload = self._request_payload(request)
                if request.kind == "task":
                    execute_fn, task, collect = payload
                    value = run_payload(execute_fn, task, collect)
                elif request.kind == "chunk":
                    execute_fn, tasks, collect = payload
                    value = run_chunk(execute_fn, tasks, collect)
                elif request.kind == "stage":
                    cost_fn, apply_fn, stage_value = payload
                    value = run_stage(cost_fn, apply_fn, stage_value)
                else:
                    raise ProtocolError(
                        f"unknown dispatch kind {request.kind!r}"
                    )
            except Exception as exc:
                # Payload failures are reported, not fatal.  Exit signals
                # (KeyboardInterrupt, SystemExit) must NOT be converted
                # into a Result — shipping them would crash the *driver's*
                # run; propagating kills this agent, the connection drops,
                # and the task resolves as lost and is re-enqueued.
                answer = Result(request_id=request.request_id, ok=False,
                                error=_portable_error(exc),
                                load=_observed_load())
            else:
                answer = Result(request_id=request.request_id, ok=True,
                                value=self._ship_value(value),
                                load=_observed_load())
            try:
                try:
                    self._send_result(answer)
                except ProtocolError as exc:
                    # The *result* cannot be shipped (output does not
                    # pickle, or the frame exceeds the size cap): tell the
                    # coordinator the actual cause instead of silently
                    # dropping the request.
                    if "exceeds the" in str(exc):
                        error = ClusterError(
                            "result exceeds frame cap — enable shm or "
                            "chunk smaller (a worker on the coordinator "
                            "host started with --shm-threshold ships "
                            "results of any size via shared memory): "
                            f"{exc}"
                        )
                    else:
                        error = ClusterError(
                            f"worker result cannot be shipped: {exc}"
                        )
                    self._send_result(Result(
                        request_id=request.request_id, ok=False,
                        error=error, load=_observed_load(),
                    ))
            except OSError:
                # The coordinator vanished mid-task (driver killed): an
                # orderly exit, not a traceback-worthy failure — but a
                # spilled result nobody will ever take must be unlinked
                # here or it outlives the run in /dev/shm.
                if isinstance(answer.value, ShmEnvelope):
                    destroy_payload(answer.value.payload)
                return

    # ------------------------------------------------------- payload registry
    def _install_payload(self, put: PutPayload) -> None:
        try:
            self._payloads[put.payload_id] = pickle.loads(put.blob)
        except Exception as exc:
            # An uninstallable payload (module missing on this host, …)
            # must fail the *referencing tasks*, not the agent: remember
            # the failure so every DispatchRef naming it gets the cause.
            self._payloads[put.payload_id] = _BrokenPayload(
                f"shared payload {put.payload_id} failed to load on "
                f"{self.node_id!r}: {exc!r}"
            )

    def _request_payload(self, request) -> tuple:
        """The payload tuple for one Dispatch or DispatchRef."""
        if isinstance(request, Dispatch):
            return request.payload
        shared = self._payloads.get(request.payload_id)
        if shared is None:
            raise ClusterError(
                f"DISPATCH_REF names unknown payload {request.payload_id} "
                "(no PUT_PAYLOAD preceded it on this connection)"
            )
        if isinstance(shared, _BrokenPayload):
            raise ClusterError(shared.reason)
        args = request.args
        if isinstance(args, ShmEnvelope):
            # Borrowed: the coordinator's registry owns the segments and
            # releases them when this request's result resolves.
            args = loads_oob(args.payload, take=False)
        return join_payload(request.kind, shared, args)

    def _ship_value(self, value: Any) -> Any:
        """Spill a large result into shared memory when negotiated.

        Values probing under the threshold (and all values when the
        handshake left shm off) ship inline, bit-identically to the
        classic path.  The spilled segment is fire-and-forget: the
        coordinator takes ownership — and the unlink duty — when it
        reconstructs the envelope.
        """
        if not self._shm_active or probe_size(value) < self.shm_threshold:
            return value
        try:
            payload, names = dumps_oob(value, threshold=self.shm_threshold)
        except Exception:
            # Unpicklable results surface through the classic send path
            # with their usual diagnostics.
            return value
        if not names:
            return value
        return ShmEnvelope(payload)

    # -------------------------------------------------------------- plumbing
    def _send(self, message) -> None:
        payload = encode(message)
        with self._send_lock:
            self._sock.sendall(payload)

    def _send_result(self, message: Result) -> None:
        self._send(message)
        self._last_result = _time.monotonic()


# ----------------------------------------------------------------- CLI entry
def _adopt_main(path: str) -> None:
    """Make the coordinator's ``__main__`` importable, like spawn does.

    Payload functions defined at the top level of the driving script pickle
    as ``__main__.<name>``; executing that script here (under a non-main
    ``__name__``, so its ``if __name__ == "__main__"`` guard stays cold)
    and aliasing it as ``__main__`` lets those pickles resolve — the same
    trick ``multiprocessing``'s spawn start method uses.
    """
    try:
        spec = importlib.util.spec_from_file_location("__grasp_main__", path)
        if spec is None or spec.loader is None:
            raise ImportError(f"cannot load {path!r}")
        module = importlib.util.module_from_spec(spec)
        module.__name__ = "__grasp_main__"
        sys.modules["__grasp_main__"] = module
        spec.loader.exec_module(module)
        sys.modules["__main__"] = module
    except BaseException as exc:
        warnings.warn(
            f"worker could not adopt the coordinator's __main__ ({path!r}: "
            f"{exc!r}); payloads defined there will fail to unpickle",
            RuntimeWarning, stacklevel=2,
        )


def _parse_address(value: str) -> Tuple[str, int]:
    host, sep, port = value.rpartition(":")
    if not sep or not host:
        raise argparse.ArgumentTypeError(
            f"expected HOST:PORT, got {value!r}"
        )
    try:
        return host, int(port)
    except ValueError:
        raise argparse.ArgumentTypeError(f"bad port in {value!r}") from None


def run_worker(host: str, port: int, node_id: str,
               heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL,
               shm_threshold: int = 0) -> None:
    """Connect to ``host:port`` and serve as node ``node_id`` until stopped."""
    WorkerAgent(host, port, node_id,
                heartbeat_interval=heartbeat_interval,
                shm_threshold=shm_threshold).serve_forever()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cluster.worker",
        description="GRASP cluster worker agent: serves one grid node "
                    "over TCP (trusted networks only — the wire protocol "
                    "carries pickles).",
    )
    parser.add_argument("--connect", type=_parse_address, required=True,
                        metavar="HOST:PORT",
                        help="coordinator address to register with")
    parser.add_argument("--node", required=True, metavar="NAME",
                        help="grid node id this agent serves")
    parser.add_argument("--heartbeat", type=float,
                        default=DEFAULT_HEARTBEAT_INTERVAL, metavar="SECONDS",
                        help="interval between liveness beacons "
                             "(default: %(default)s)")
    parser.add_argument("--main", default=None, metavar="PATH",
                        help="driving script whose top-level payload "
                             "definitions should be importable here "
                             "(set automatically by LocalCluster)")
    parser.add_argument("--shm-threshold", type=int, default=0,
                        metavar="BYTES",
                        help="ship results of at least this many bytes via "
                             "shared memory (coordinator-host agents only; "
                             "0 disables — the default)")
    args = parser.parse_args(argv)
    if args.main:
        _adopt_main(args.main)
    host, port = args.connect
    try:
        run_worker(host, port, args.node, heartbeat_interval=args.heartbeat,
                   shm_threshold=args.shm_threshold)
    except ClusterError as exc:
        print(f"worker {args.node!r}: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
