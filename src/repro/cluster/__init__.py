"""The distributed cluster subsystem: GRASP on a real multi-host grid.

The paper's parallel environment is a metacomputer — many heterogeneous,
non-dedicated machines — yet the other wall-clock backends all live inside
one OS process.  This package is the missing layer:

* :mod:`repro.cluster.protocol` — the length-prefixed, versioned wire
  protocol (HELLO / DISPATCH / RESULT / HEARTBEAT / GOODBYE frames, plus
  the v2 hot path: binary RESULT/HEARTBEAT codecs and the PUT_PAYLOAD /
  DISPATCH_REF payload registry).
* :mod:`repro.cluster.worker` — the worker agent
  (``python -m repro.cluster.worker --connect HOST:PORT --node NAME``):
  one grid node on one host, executing tasks serially and streaming
  results back.
* :mod:`repro.cluster.coordinator` — :class:`ClusterCoordinator`:
  registration, future-based dispatch, heartbeat/disconnect death
  detection, rejoin.
* :mod:`repro.cluster.backend` — :class:`ClusterBackend`, the
  :class:`~repro.backends.base.ExecutionBackend` the adaptive runtime
  drives (``backend="cluster"`` in ``compile_program``/``Grasp``).
* :mod:`repro.cluster.local` — :class:`LocalCluster`: coordinator plus
  localhost worker subprocesses, for tests/examples/benchmarks.

**Security**: the wire protocol carries pickles — running a worker or a
coordinator on an untrusted network is remote code execution by design.
Trusted networks only.
"""

from __future__ import annotations

from repro.cluster.backend import ClusterBackend
from repro.cluster.coordinator import ClusterCoordinator, WorkerInfo, WorkerLost
from repro.cluster.local import LocalCluster
from repro.cluster.protocol import (
    PROTOCOL_VERSION,
    Dispatch,
    DispatchRef,
    FrameDecoder,
    Goodbye,
    Heartbeat,
    Hello,
    PutPayload,
    Result,
    Welcome,
    encode,
)

__all__ = [
    "ClusterBackend",
    "ClusterCoordinator",
    "LocalCluster",
    "WorkerInfo",
    "WorkerLost",
    "PROTOCOL_VERSION",
    "FrameDecoder",
    "encode",
    "Hello",
    "Welcome",
    "Dispatch",
    "DispatchRef",
    "PutPayload",
    "Result",
    "Heartbeat",
    "Goodbye",
]
