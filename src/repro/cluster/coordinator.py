"""The cluster coordinator: registration, dispatch and death detection.

:class:`ClusterCoordinator` is the master-side endpoint of the cluster
subsystem.  It listens on a TCP port, accepts worker-agent connections
(:mod:`repro.cluster.worker`), registers each agent under its node id on
:class:`~repro.cluster.protocol.Hello`, and exposes two future-based
dispatch primitives the :class:`~repro.cluster.backend.ClusterBackend`
builds its paths on: ``submit`` ships a payload by value (legacy), while
``register_payload`` + ``submit_ref`` preserialise the shared part of a
payload once and ship each node one PUT_PAYLOAD plus per-task
DISPATCH_REF frames — the dispatch hot path.

**Liveness.**  A worker is *live* from its registration until its
connection drops, it says :class:`~repro.cluster.protocol.Goodbye`, or its
heartbeats go quiet for longer than ``heartbeat_timeout``.  Death fails
every pending request of that worker with :class:`WorkerLost` — the backend
converts those into *lost* task outcomes, which is exactly the signal the
adaptive engine's recalibrate/re-rank path needs to route traffic off the
dead machine.  Because a dead connection's reader stops and its pending map
is cleared atomically with the death mark, **no result is ever accepted
after a worker is declared dead** — a late frame resolves nothing.

**Rejoin.**  A worker that reconnects under the same node id (a restarted
agent on the same machine, or a replacement host adopting the name) simply
re-registers and re-enters the live set; the availability queries pick it
up on the next scheduling decision.  A still-live duplicate of the same
name is superseded: the old connection is declared dead first.

Security: the wire protocol carries pickles (see
:mod:`repro.cluster.protocol`) — bind the coordinator to trusted networks
only.
"""

from __future__ import annotations

import itertools
import socket
import threading
import time as _time
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.backends.shm import (
    BufferRegistry,
    ShmEnvelope,
    dumps_oob,
    loads_oob,
    probe_size,
)
from repro.cluster.protocol import (
    PROTOCOL_VERSION,
    Dispatch,
    DispatchRef,
    FrameDecoder,
    Goodbye,
    Heartbeat,
    Hello,
    PutPayload,
    Result,
    Status,
    StatusReply,
    Welcome,
    encode,
)
from repro.exceptions import ClusterError, ProtocolError
from repro.sanitizers.locks import make_lock

__all__ = ["ClusterCoordinator", "WorkerInfo", "WorkerLost"]

_RECV_BYTES = 1 << 16

#: Listener signature: ``(category, message, data)`` — the cluster-layer
#: event stream (``cluster.register`` / ``cluster.rejoin`` /
#: ``cluster.death`` / ``cluster.payload_ship``).
ClusterListener = Callable[[str, str, Dict[str, Any]], None]


class WorkerLost(ClusterError):
    """A dispatch could not complete because its worker agent is gone."""


@dataclass(frozen=True)
class WorkerInfo:
    """Node descriptor of one registered worker agent."""

    node_id: str
    host: str
    pid: int
    cpus: int
    connected_at: float


class _WorkerConn:
    """One worker agent's TCP connection and in-flight request table."""

    def __init__(self, sock: socket.socket, peer: Tuple[str, int]):
        self.sock = sock
        self.peer = peer
        self.node_id: Optional[str] = None
        self.info: Optional[WorkerInfo] = None
        self.decoder = FrameDecoder()
        self.send_lock = make_lock("coordinator.worker-send")
        #: request_id -> Future, guarded by the coordinator lock.
        self.pending: Dict[int, Future] = {}
        #: payload ids already PUT on this connection; guarded by
        #: ``send_lock`` (the PUT-before-REF ordering is a property of the
        #: byte stream, so the check-and-ship must be atomic with the
        #: sends).  Grows only — a rejoin gets a fresh connection, and with
        #: it an empty set, so shared payloads are re-shipped naturally.
        self.sent_payloads: Set[int] = set()
        self.last_beat = _time.monotonic()
        self.load = 0.0
        self.alive = True
        #: Negotiated at registration: this agent advertised the
        #: shared-memory data plane and the coordinator enables it.
        self.shm = False
        #: request_id -> names of the coordinator-owned argument segments
        #: shipped with that request; guarded by the coordinator lock,
        #: released when the request resolves or the worker dies.
        self.segments: Dict[int, List[str]] = {}
        #: Result tallies for this incarnation, guarded by the coordinator
        #: lock.  Piggybacked observability: counted where results already
        #: cross the coordinator, so workers need no extra frames.
        self.results_ok = 0
        self.results_failed = 0

    def send(self, message) -> None:
        self.send_bytes(encode(message))

    def send_bytes(self, payload: bytes) -> None:
        with self.send_lock:
            self.sock.sendall(payload)

    def try_send(self, message, timeout: float) -> None:
        """Best-effort bounded send (shutdown paths must never block
        forever behind a stalled peer holding the send lock)."""
        try:
            # Encode before touching the socket: a serialization failure
            # must not burn the bounded send window or hold the lock.
            payload = encode(message)
        except ProtocolError:
            return
        if not self.send_lock.acquire(timeout=timeout):
            return
        try:
            self.sock.settimeout(timeout)
            self.sock.sendall(payload)
        except OSError:
            pass
        finally:
            self.send_lock.release()


class ClusterCoordinator:
    """TCP endpoint mapping grid node ids onto live worker agents.

    Parameters
    ----------
    host, port:
        Listening address.  ``port=0`` (the default) picks an ephemeral
        port; read :attr:`address` afterwards.  Bind to a private interface
        — the protocol is trusted-network-only.
    heartbeat_timeout:
        Seconds of heartbeat silence after which a connected-but-mute
        worker is declared dead.  Socket-level disconnects (including a
        SIGKILLed worker's) are detected immediately, independent of this.
    shm_threshold:
        Dispatch arguments probing at or above this many bytes are
        spilled into a shared-memory segment (descriptor on the wire)
        for connections that negotiated the capability at registration
        (see :class:`~repro.cluster.protocol.Hello`); result envelopes
        from such workers are reconstructed here.  ``0`` (the default)
        keeps every payload inline.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 heartbeat_timeout: float = 10.0, shm_threshold: int = 0):
        if heartbeat_timeout <= 0:
            raise ClusterError(
                f"heartbeat_timeout must be > 0, got {heartbeat_timeout}"
            )
        self.heartbeat_timeout = float(heartbeat_timeout)
        self.shm_threshold = max(0, int(shm_threshold))
        #: Owner of the argument segments this coordinator spilled.
        self._shm = BufferRegistry()
        self._lock = make_lock("coordinator.state")
        self._registered = threading.Condition(self._lock)
        #: node_id -> live connection (dead ones are removed).
        self._workers: Dict[str, _WorkerConn] = {}
        #: every accepted, not-yet-dead connection — including ones still
        #: mid-handshake, which close() must tear down too.
        self._conns: set = set()
        self._infos: Dict[str, WorkerInfo] = {}
        self._request_ids = itertools.count(1)
        #: payload_id -> preserialised blob (the payload registry); each
        #: blob is pickled once, here, and shipped verbatim per node.
        self._payloads: Dict[int, bytes] = {}
        self._payload_ids = itertools.count(1)
        self._closed = False
        self._threads: List[threading.Thread] = []
        #: cluster-event listeners (see :meth:`add_listener`); guarded by
        #: the coordinator lock, invoked outside it.
        self._listeners: List[ClusterListener] = []

        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            self._listener.bind((host, port))
            self._listener.listen(128)
        except OSError as exc:
            self._listener.close()
            raise ClusterError(
                f"cannot listen on {host}:{port} ({exc})"
            ) from exc
        self._host, self._port = self._listener.getsockname()[:2]
        # A blocked accept() is not reliably woken by close() from another
        # thread; a short timeout lets the accept loop poll the stop flag.
        self._listener.settimeout(0.25)

        self._stop = threading.Event()
        accept = threading.Thread(target=self._accept_loop,
                                  name="grasp-cluster-accept", daemon=True)
        monitor = threading.Thread(target=self._monitor_loop,
                                   name="grasp-cluster-monitor", daemon=True)
        self._threads += [accept, monitor]
        accept.start()
        monitor.start()

    # ------------------------------------------------------------- inspection
    @property
    def address(self) -> Tuple[str, int]:
        """The ``(host, port)`` workers should ``--connect`` to."""
        return (self._host, self._port)

    def live_nodes(self) -> List[str]:
        """Node ids with a live worker agent right now."""
        with self._lock:
            return sorted(self._workers)

    def is_live(self, node_id: str) -> bool:
        """Whether ``node_id`` has a live worker agent right now."""
        with self._lock:
            return node_id in self._workers

    def worker_info(self, node_id: str) -> Optional[WorkerInfo]:
        """Descriptor of the most recent agent registered as ``node_id``."""
        with self._lock:
            return self._infos.get(node_id)

    def node_load(self, node_id: str) -> float:
        """Last heartbeat-reported CPU load of ``node_id`` (0.0 if unknown)."""
        with self._lock:
            conn = self._workers.get(node_id)
            return conn.load if conn is not None else 0.0

    def pending_count(self) -> int:
        """Dispatched-but-unresolved requests across all live workers."""
        with self._lock:
            return sum(len(conn.pending) for conn in self._workers.values())

    def shm_segment_count(self) -> int:
        """Argument segments currently owned by this coordinator.

        Must read zero once every dispatch resolved — the
        ``transport.shm_segments`` gauge and the shm leak tests watch it.
        """
        return len(self._shm)

    def max_heartbeat_age(self) -> float:
        """Seconds since the quietest live worker was last heard from.

        ``0.0`` with no live workers — the value feeds a gauge, and "no
        workers" is already visible on ``cluster.live_workers``.
        """
        now = _time.monotonic()
        with self._lock:
            if not self._workers:
                return 0.0
            return max(now - conn.last_beat
                       for conn in self._workers.values())

    def status_snapshot(self) -> Dict[str, Any]:
        """One coherent, JSON-compatible view of the coordinator's state.

        This is what a :class:`~repro.cluster.protocol.Status` probe gets
        back (rendered by ``python -m repro.metrics status``) — coordinator
        identity plus one record per live worker: pending dispatches,
        last-heard age, reported load and the result tallies counted as
        frames crossed this coordinator.
        """
        now = _time.monotonic()
        with self._lock:
            workers = [
                {
                    "node": conn.node_id,
                    "host": conn.info.host if conn.info else "",
                    "pid": conn.info.pid if conn.info else 0,
                    "cpus": conn.info.cpus if conn.info else 0,
                    "load": conn.load,
                    "pending": len(conn.pending),
                    "heartbeat_age": now - conn.last_beat,
                    "results_ok": conn.results_ok,
                    "results_failed": conn.results_failed,
                }
                for conn in self._workers.values()
            ]
            closed = self._closed
        workers.sort(key=lambda w: w["node"])
        return {
            "protocol": PROTOCOL_VERSION,
            "address": [self._host, self._port],
            "heartbeat_timeout": self.heartbeat_timeout,
            "closed": closed,
            "live_workers": len(workers),
            "pending": sum(w["pending"] for w in workers),
            "results_ok": sum(w["results_ok"] for w in workers),
            "results_failed": sum(w["results_failed"] for w in workers),
            "workers": workers,
        }

    # -------------------------------------------------------- cluster events
    def add_listener(self, listener: ClusterListener) -> None:
        """Subscribe to the cluster-layer event stream.

        ``listener(category, message, data)`` is called for every
        membership / payload event: ``cluster.register``,
        ``cluster.rejoin`` (same node id seen before), ``cluster.death``
        (with the reason), and ``cluster.payload_ship`` (a registered
        payload blob crossed the wire to one node).  Listeners run on
        coordinator service threads, *outside* the coordinator lock, and
        exceptions they raise are swallowed — a broken listener must not
        take the dispatch path down with it.
        """
        with self._lock:
            self._listeners.append(listener)

    def remove_listener(self, listener: ClusterListener) -> None:
        """Unsubscribe ``listener`` (no-op when not subscribed)."""
        with self._lock:
            if listener in self._listeners:
                self._listeners.remove(listener)

    def _notify(self, category: str, message: str, **data: Any) -> None:
        with self._lock:
            listeners = list(self._listeners)
        for listener in listeners:
            try:
                listener(category, message, dict(data))
            except Exception:
                # Observability must never break the transport.
                pass

    def wait_for_workers(self, node_ids, timeout: float = 30.0) -> None:
        """Block until every id in ``node_ids`` has a live agent.

        Raises :class:`~repro.exceptions.ClusterError` naming the missing
        nodes when ``timeout`` elapses first.
        """
        expected = set(node_ids)
        deadline = _time.monotonic() + timeout
        with self._registered:
            while not expected <= set(self._workers):
                remaining = deadline - _time.monotonic()
                if remaining <= 0 or self._closed:
                    missing = sorted(expected - set(self._workers))
                    raise ClusterError(
                        f"workers {missing} did not register within "
                        f"{timeout:.1f}s"
                    )
                self._registered.wait(remaining)

    # --------------------------------------------------------------- dispatch
    def submit(self, node_id: str, kind: str, payload: tuple) -> Future:
        """Ship one unit of work to ``node_id``; resolve on its Result.

        The future resolves to the Result's ``value``, raises the payload's
        exception when the worker reported a failure, or raises
        :class:`WorkerLost` when the agent dies before answering.  Raises
        :class:`WorkerLost` synchronously when ``node_id`` has no live
        agent, :class:`~repro.exceptions.ProtocolError` when the payload
        violates the picklable-payload contract (the worker is *not*
        penalised for the caller's unpicklable lambda), and
        :class:`~repro.exceptions.ClusterError` when the coordinator is
        closed.
        """
        future: Future = Future()
        with self._lock:
            if self._closed:
                raise ClusterError("cluster coordinator is closed")
            conn = self._workers.get(node_id)
            if conn is None or not conn.alive:
                raise WorkerLost(f"node {node_id!r} has no live worker agent")
            request_id = next(self._request_ids)
            conn.pending[request_id] = future
        # Encode before touching the socket: a local pickling failure is the
        # *caller's* error and must surface as such — treating it as a send
        # failure would kill a healthy worker (and then the next one, and
        # the next) over a lambda.
        try:
            frame = encode(Dispatch(request_id=request_id, kind=kind,
                                    payload=payload))
        except ProtocolError:
            with self._lock:
                conn.pending.pop(request_id, None)
            raise
        try:
            conn.send_bytes(frame)
        except OSError as exc:
            self._mark_dead(conn, f"send failed ({exc})")
        return future

    def register_payload(self, blob: bytes) -> int:
        """Install a preserialised shared payload in the registry.

        ``blob`` must come from
        :func:`repro.cluster.protocol.dumps_payload` — the registry ships
        it verbatim, once per connection, ahead of the first
        :meth:`submit_ref` that references it.  Returns the payload id.
        """
        with self._lock:
            if self._closed:
                raise ClusterError("cluster coordinator is closed")
            payload_id = next(self._payload_ids)
            self._payloads[payload_id] = bytes(blob)
        return payload_id

    def submit_ref(self, node_id: str, kind: str, payload_id: int,
                   args) -> Future:
        """Ship one unit of work referencing a registered shared payload.

        Same future semantics as :meth:`submit`, but the wire carries only
        ``args`` (plus, on the first reference per connection, the shared
        blob itself as a PUT_PAYLOAD).  The check-and-ship happens under
        the connection's send lock, so a DISPATCH_REF can never overtake
        the PUT_PAYLOAD it depends on.
        """
        future: Future = Future()
        with self._lock:
            if self._closed:
                raise ClusterError("cluster coordinator is closed")
            conn = self._workers.get(node_id)
            if conn is None or not conn.alive:
                raise WorkerLost(f"node {node_id!r} has no live worker agent")
            blob = self._payloads.get(payload_id)
            if blob is None:
                raise ClusterError(
                    f"payload {payload_id} is not registered"
                )
            request_id = next(self._request_ids)
            conn.pending[request_id] = future
        # Spill large args into a registry-owned segment for connections
        # that negotiated shm; the wire then carries only a descriptor
        # envelope.  The segments are released when this request resolves
        # (or its worker dies).
        send_args, shm_names = self._ship_args(conn, args)
        if shm_names:
            dead = False
            with self._lock:
                if conn.alive:
                    conn.segments[request_id] = shm_names
                else:
                    dead = True
            if dead:
                # Death raced the spill: _mark_dead already failed the
                # future and cleared the request, so reclaim here.
                self._shm.release_many(shm_names)
        # Encode before touching the socket (see submit): unpicklable args
        # and over-limit blobs are the *caller's* errors.  The sent set
        # only grows, so a pre-lock peek can only over-encode, never skip
        # a required PUT.
        try:
            ref_frame = encode(DispatchRef(request_id=request_id,
                                           payload_id=payload_id,
                                           kind=kind, args=send_args))
            put_frame = (encode(PutPayload(payload_id=payload_id, blob=blob))
                         if payload_id not in conn.sent_payloads else None)
        except ProtocolError:
            with self._lock:
                conn.pending.pop(request_id, None)
                conn.segments.pop(request_id, None)
            self._shm.release_many(shm_names)
            raise
        shipped = False
        try:
            with conn.send_lock:
                if payload_id not in conn.sent_payloads:
                    conn.sock.sendall(put_frame)
                    conn.sent_payloads.add(payload_id)
                    shipped = True
                conn.sock.sendall(ref_frame)
        except OSError as exc:
            self._mark_dead(conn, f"send failed ({exc})")
        if shipped:
            self._notify("cluster.payload_ship",
                         f"shared payload {payload_id} shipped to "
                         f"{node_id!r}",
                         node=node_id, payload_id=payload_id,
                         nbytes=len(blob))
        if shm_names and isinstance(send_args, ShmEnvelope):
            self._notify("dispatch.shm_ship",
                         f"dispatch args shipped via shared memory to "
                         f"{node_id!r}",
                         node=node_id, direction="args",
                         inline=send_args.payload.inline_bytes,
                         shm=send_args.payload.shm_bytes,
                         segments=len(shm_names))
        return future

    def _ship_args(self, conn: _WorkerConn, args: Any) -> Tuple[Any, List[str]]:
        """Spill large dispatch args for an shm-negotiated connection.

        Returns ``(wire args, segment names)`` — the original args with no
        names when the payload is small, the connection did not negotiate
        shm, or the spill could not serialise (unpicklable args then
        surface through the classic encode path with their usual
        diagnostics).
        """
        if not conn.shm or probe_size(args) < self.shm_threshold:
            return args, []
        try:
            payload, names = dumps_oob(args, threshold=self.shm_threshold,
                                       registry=self._shm)
        except Exception:
            return args, []
        if not names:
            return args, []
        return ShmEnvelope(payload), names

    # -------------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Say goodbye to every worker and stop all service threads."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            conns = list(self._conns)
            self._payloads.clear()
            self._registered.notify_all()
        self._stop.set()
        for conn in conns:
            # Bounded: a stalled peer (SIGSTOPped worker, full TCP buffer)
            # must not hang close() — the monitor that would have reaped it
            # is already stopping, and _mark_dead's shutdown() below breaks
            # any sendall still stuck in a submit.
            conn.try_send(Goodbye(node_id=conn.node_id or "",
                                  reason="close"), timeout=1.0)
            self._mark_dead(conn, "coordinator closed")
        try:
            self._listener.close()
        except OSError:  # pragma: no cover - platform dependent
            pass
        with self._lock:
            threads = list(self._threads)
        for thread in threads:
            thread.join(timeout=5.0)
        # Nothing may outlive the coordinator in /dev/shm.
        self._shm.close()

    def __enter__(self) -> "ClusterCoordinator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ---------------------------------------------------------- service loops
    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                sock, peer = self._listener.accept()
            except socket.timeout:
                continue    # poll the stop flag
            except OSError:
                return      # listener closed: shutting down
            sock.settimeout(None)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            conn = _WorkerConn(sock, peer)
            reader = threading.Thread(
                target=self._reader_loop, args=(conn,),
                name=f"grasp-cluster-reader-{peer[0]}:{peer[1]}", daemon=True,
            )
            with self._lock:
                if self._closed:
                    # Raced accept during close(): shutdown first so the
                    # agent's blocked recv() sees EOF immediately rather
                    # than timing out against a half-dead coordinator.
                    try:
                        sock.shutdown(socket.SHUT_RDWR)
                    except OSError:
                        pass
                    sock.close()
                    return
                self._conns.add(conn)
                # Prune threads of long-dead connections while appending so
                # a churn-heavy coordinator (kill/rejoin cycles) stays O(live).
                self._threads = [t for t in self._threads if t.is_alive()]
                self._threads.append(reader)
            reader.start()

    def _reader_loop(self, conn: _WorkerConn) -> None:
        try:
            while True:
                data = conn.sock.recv(_RECV_BYTES)
                if not data:
                    conn.decoder.at_eof()
                    self._mark_dead(conn, "connection closed")
                    return
                # Any arriving byte proves a *registered* worker alive — a
                # large Result crawling over a slow link must not let the
                # heartbeat timer (starved behind the worker's send lock)
                # declare a mid-transfer worker dead.  Pre-HELLO bytes do
                # NOT count: an unregistered client drip-feeding frames
                # must still hit the handshake deadline.
                with self._lock:
                    if conn.node_id is not None:
                        conn.last_beat = _time.monotonic()
                for message in conn.decoder.feed(data):
                    self._handle(conn, message)
        except ProtocolError as exc:
            self._mark_dead(conn, f"protocol error ({exc})")
        except OSError as exc:
            self._mark_dead(conn, f"connection lost ({exc})")

    def _monitor_loop(self) -> None:
        interval = min(1.0, self.heartbeat_timeout / 4.0)
        while not self._stop.wait(interval):
            now = _time.monotonic()
            with self._lock:
                # Scan every accepted connection, registered or not: a
                # client that connects and never says HELLO (crashed
                # worker, port scanner) must not pin a reader thread and
                # a socket for the coordinator's lifetime.
                quiet = [conn for conn in self._conns
                         if now - conn.last_beat > self.heartbeat_timeout]
            for conn in quiet:
                reason = ("heartbeat timeout" if conn.node_id is not None
                          else "no HELLO within the heartbeat timeout")
                self._mark_dead(conn, reason)

    # ----------------------------------------------------------- frame routing
    def _handle(self, conn: _WorkerConn, message) -> None:
        if isinstance(message, Status):
            # Introspection probe from a monitoring client, answered before
            # the HELLO gate on purpose: a status query must never count as
            # (or require) a registered worker.  The client disconnects
            # after the reply; the resulting EOF takes the normal
            # unregistered-connection cleanup path.
            conn.send(StatusReply(snapshot=self.status_snapshot()))
        elif isinstance(message, Hello):
            self._register(conn, message)
        elif conn.node_id is None:
            # Registration first: heartbeats/results from an anonymous
            # connection would otherwise keep refreshing its liveness and
            # pin the socket forever without it ever becoming dispatchable.
            raise ProtocolError(
                f"{type(message).__name__} before HELLO"
            )
        elif isinstance(message, Result):
            self._resolve(conn, message)
        elif isinstance(message, Heartbeat):
            with self._lock:
                conn.last_beat = _time.monotonic()
                conn.load = float(message.load)
        elif isinstance(message, Goodbye):
            self._mark_dead(conn, f"worker said goodbye ({message.reason})")
        else:
            raise ProtocolError(
                f"unexpected {type(message).__name__} from worker"
            )

    def _register(self, conn: _WorkerConn, hello: Hello) -> None:
        if not hello.node_id:
            raise ProtocolError("HELLO with an empty node id")
        if conn.node_id is not None:
            # A connection registers exactly once; a second HELLO would
            # leave the first node id mapped to this conn forever (death
            # cleanup only removes the *current* node_id's mapping).
            raise ProtocolError(
                f"second HELLO ({hello.node_id!r}) on a connection already "
                f"registered as {conn.node_id!r}"
            )
        if hello.protocol != PROTOCOL_VERSION:
            # The frame layer already rejects foreign frame versions; this
            # rejects a matching frame format carrying a newer message
            # vocabulary, at registration time where the error is clear.
            raise ProtocolError(
                f"worker {hello.node_id!r} speaks message protocol "
                f"{hello.protocol}, this coordinator speaks "
                f"{PROTOCOL_VERSION}"
            )
        info = WorkerInfo(node_id=hello.node_id, host=hello.host,
                          pid=hello.pid, cpus=max(1, hello.cpus),
                          connected_at=_time.monotonic())
        # Acknowledge BEFORE publishing the worker as live: once it is in
        # ``_workers`` a racing ``submit`` may send a Dispatch, and the
        # agent requires WELCOME to be the first frame it sees.
        conn.node_id = hello.node_id
        conn.info = info
        # Both sides must opt in: the agent advertised shm (same host,
        # positive threshold) and this coordinator has it enabled.
        conn.shm = bool(getattr(hello, "shm", False)) \
            and self.shm_threshold > 0
        conn.send(Welcome(node_id=hello.node_id, shm=conn.shm))
        superseded: Optional[_WorkerConn] = None
        rejoin = False
        with self._registered:
            closed = self._closed
            if not closed:
                # Check-and-swap under ONE lock hold: two simultaneous
                # same-name HELLOs must each see the other, or the loser
                # becomes a welcomed-but-never-serviced orphan.
                superseded = self._workers.get(hello.node_id)
                if superseded is conn:
                    superseded = None
                # Infos persist across deaths, so a previously-seen node
                # id registering again is a rejoin (restarted agent, or a
                # replacement host adopting the name).
                rejoin = hello.node_id in self._infos
                conn.last_beat = _time.monotonic()
                self._workers[hello.node_id] = conn
                self._infos[hello.node_id] = info
                self._registered.notify_all()
        if superseded is not None:
            # Same-name rejoin while the old connection lingered: the
            # latest registration wins, the stale agent is declared dead.
            self._mark_dead(superseded, "superseded by a rejoining worker")
        if not closed:
            self._notify(
                "cluster.rejoin" if rejoin else "cluster.register",
                f"worker {hello.node_id!r} "
                + ("rejoined" if rejoin else "registered"),
                node=hello.node_id, host=hello.host, pid=hello.pid,
                cpus=info.cpus,
            )
        if closed:
            # Registration raced close(): tell the agent to go away rather
            # than leave it welcomed but never serviced (a remote worker
            # would otherwise heartbeat into a dead coordinator forever).
            conn.try_send(Goodbye(node_id=hello.node_id,
                                  reason="coordinator closed"), timeout=1.0)
            self._mark_dead(conn, "coordinator closed during registration")

    def _resolve(self, conn: _WorkerConn, result: Result) -> None:
        value = result.value
        decode_error: Optional[BaseException] = None
        if isinstance(value, ShmEnvelope):
            # Ownership of the worker's result segment transfers here
            # (take=True copies out and unlinks) — *before* the pending
            # lookup, so even a stale result's segment is reclaimed.
            payload = value.payload
            try:
                value = loads_oob(payload, take=True)
            except Exception as exc:
                decode_error = ClusterError(
                    f"shared-memory result could not be reconstructed "
                    f"({exc!r})"
                )
            self._notify("dispatch.shm_ship",
                         f"result received via shared memory from "
                         f"{conn.node_id!r}",
                         node=conn.node_id or "", direction="result",
                         inline=payload.inline_bytes,
                         shm=payload.shm_bytes,
                         segments=len(payload.segment_names()))
        with self._lock:
            # Results piggyback the worker's load observation (a negative
            # value means "not carried"), so an active worker keeps the
            # monitoring layer current without separate heartbeat beacons.
            if result.load >= 0.0:
                conn.load = float(result.load)
            future = conn.pending.pop(result.request_id, None)
            arg_segments = conn.segments.pop(result.request_id, None)
            if future is not None:
                if result.ok and decode_error is None:
                    conn.results_ok += 1
                else:
                    conn.results_failed += 1
        if arg_segments:
            # The worker is done with the borrowed argument segments.
            self._shm.release_many(arg_segments)
        if future is None:
            # Unknown id: the request was already failed by a death mark, or
            # the frame is stale.  Either way the result is not accepted.
            return
        if decode_error is not None:
            future.set_exception(decode_error)
        elif result.ok:
            future.set_result(value)
        else:
            error = result.error
            if not isinstance(error, BaseException):
                error = ClusterError(f"worker payload failed: {error!r}")
            future.set_exception(error)

    # ----------------------------------------------------------------- death
    def _mark_dead(self, conn: _WorkerConn, reason: str) -> None:
        with self._lock:
            if not conn.alive:
                return
            conn.alive = False
            # Atomically drop the live mapping (unless a rejoin already
            # replaced it) and fail every in-flight request: after this
            # point no result from this incarnation can resolve anything.
            if conn.node_id and self._workers.get(conn.node_id) is conn:
                del self._workers[conn.node_id]
            self._conns.discard(conn)
            pending = list(conn.pending.values())
            conn.pending.clear()
            stranded = [name for names in conn.segments.values()
                        for name in names]
            conn.segments.clear()
        if stranded:
            # A dead worker can no longer read its borrowed argument
            # segments; reclaim them with the requests they served.
            self._shm.release_many(stranded)
        label = conn.node_id or f"{conn.peer[0]}:{conn.peer[1]}"
        if conn.node_id is not None:
            # Death first, *then* the in-flight failures: the trace reads
            # causally (cluster.death precedes the dispatch.lost /
            # task.requeue cascade its WorkerLost futures trigger).
            self._notify("cluster.death", f"worker {label!r} died: {reason}",
                         node=conn.node_id, reason=reason,
                         pending_failed=len(pending))
        for future in pending:
            future.set_exception(
                WorkerLost(f"worker {label!r} died: {reason}")
            )
        # shutdown() before close(): close() alone does NOT wake a thread
        # blocked in recv(), so a heartbeat-timeout death (socket open,
        # worker mute) would otherwise strand the reader thread forever.
        try:
            conn.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass        # already disconnected
        try:
            conn.sock.close()
        except OSError:  # pragma: no cover - platform dependent
            pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"ClusterCoordinator({self._host}:{self._port}, "
                f"live={self.live_nodes()})")
