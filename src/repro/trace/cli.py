"""Report/diff CLI over recorded JSONL run traces.

See the package docstring for usage.  Everything here operates on plain
event dicts (the :meth:`repro.utils.tracing.TraceEvent.to_dict` shape),
so traces recorded by other processes — cluster runs, CI smoke jobs —
are first-class inputs.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, Dict, List, Optional, Tuple

from repro.utils.stats import percentile

__all__ = ["TraceCliError", "build_profile", "evaluate_baseline",
           "load_events", "main", "summarize"]


class TraceCliError(Exception):
    """An unreadable or malformed trace file (CLI exit code 2)."""


# --------------------------------------------------------------------- loading
def load_events(path: str) -> List[Dict[str, Any]]:
    """Parse one JSONL trace file into event dicts, in file order.

    Raises :class:`TraceCliError` on a missing/unreadable file, a line
    that is not valid JSON, or a line that is not an event object.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
    except OSError as exc:
        raise TraceCliError(f"cannot read {path!r}: {exc}") from exc
    events: List[Dict[str, Any]] = []
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TraceCliError(
                f"{path}:{lineno}: not valid JSON ({exc.msg})"
            ) from exc
        if not isinstance(event, dict) or "category" not in event:
            raise TraceCliError(
                f"{path}:{lineno}: not a trace event (no category)"
            )
        events.append(event)
    return events


# ----------------------------------------------------------------- summarising
def _virtual_span(events: List[Dict[str, Any]]) -> Optional[float]:
    times = [e["time"] for e in events if e.get("time") is not None]
    return (max(times) - min(times)) if len(times) >= 2 else None


def _wall_span(events: List[Dict[str, Any]]) -> Optional[float]:
    walls = [e["wall"] for e in events if e.get("wall")]
    return (max(walls) - min(walls)) if len(walls) >= 2 else None


def summarize(events: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Fold one run's events into the report structure (JSON-friendly)."""
    categories: Dict[str, int] = {}
    nodes: Dict[str, Dict[str, Any]] = {}
    windows: List[Dict[str, Any]] = []
    deaths: List[Dict[str, Any]] = []
    timeline: List[Dict[str, Any]] = []
    counts = {"recalibrations": 0, "reranks": 0, "failovers": 0,
              "registers": 0, "rejoins": 0, "payload_ships": 0}
    requeued = 0
    programmed = 0
    completed = 0

    def node_row(name: str) -> Dict[str, Any]:
        return nodes.setdefault(
            name, {"dispatches": 0, "resolved": 0, "failed": 0,
                   "lost": 0, "busy": 0.0, "utilization": None})

    for event in events:
        category = event.get("category", "")
        data = event.get("data") or {}
        categories[category] = categories.get(category, 0) + 1
        if category.startswith("phase."):
            timeline.append({"seq": event.get("seq"),
                             "time": event.get("time"),
                             "category": category,
                             "message": event.get("message", "")})
        elif category == "dispatch.issue":
            node_row(str(data.get("node")))["dispatches"] += 1
        elif category == "dispatch.resolve":
            row = node_row(str(data.get("node")))
            row["resolved"] += 1
            if data.get("ok") is False:
                row["failed"] += 1
            row["busy"] += float(data.get("elapsed") or 0.0)
        elif category == "dispatch.lost":
            node_row(str(data.get("node")))["lost"] += 1
        elif category == "adaptation.window":
            windows.append({
                "round": data.get("round"),
                "samples": data.get("samples"),
                "observed_min": data.get("observed_min"),
                "threshold": data.get("threshold"),
                "breached": bool(data.get("breached")),
                "action": data.get("action"),
            })
        elif category == "adaptation.recalibrate":
            counts["recalibrations"] += 1
        elif category == "adaptation.rerank":
            counts["reranks"] += 1
        elif category == "adaptation.failover":
            counts["failovers"] += 1
        elif category == "task.requeue":
            requeued += int(data.get("count") or 0)
        elif category == "cluster.register":
            counts["registers"] += 1
        elif category == "cluster.rejoin":
            counts["rejoins"] += 1
        elif category == "cluster.payload_ship":
            counts["payload_ships"] += 1
        elif category == "cluster.death":
            deaths.append({"seq": event.get("seq"),
                           "node": data.get("node"),
                           "reason": data.get("reason")})
        if category == "phase.programming":
            programmed += int(data.get("tasks") or 0)
        elif category == "phase.execution.end":
            completed += int(data.get("results") or 0)

    # The programmed task count includes calibration probes; execution
    # results alone undercount them, so prefer the former when present.
    tasks = programmed or completed
    makespan = _virtual_span(events)
    wall = _wall_span(events)
    span = makespan if makespan else wall
    for row in nodes.values():
        row["utilization"] = (row["busy"] / span) if span else None
    tasks_per_sec = (tasks / span) if (span and tasks) else None

    return {
        "run": events[0].get("run") if events else None,
        "events": len(events),
        "categories": categories,
        "makespan": makespan,
        "wall_makespan": wall,
        "tasks": tasks or None,
        "tasks_per_sec": tasks_per_sec,
        "timeline": timeline,
        "nodes": nodes,
        "adaptation": {
            "windows": windows,
            "breaches": sum(1 for w in windows if w["breached"]),
            "recalibrations": counts["recalibrations"],
            "reranks": counts["reranks"],
            "failovers": counts["failovers"],
            "requeued_tasks": requeued,
        },
        "cluster": {
            "registers": counts["registers"],
            "rejoins": counts["rejoins"],
            "payload_ships": counts["payload_ships"],
            "deaths": deaths,
        },
    }


# ------------------------------------------------------------------ rendering
def _fmt(value: Any, precision: int = 4) -> str:
    if value is None:
        # Zero-length and single-event traces have no spans/rates at
        # all; every renderer funnels those through here as "n/a"
        # rather than crashing or printing a bare dash.
        return "n/a"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{precision}g}"
    return str(value)


def _render_report_text(summary: Dict[str, Any], path: str) -> str:
    lines: List[str] = []
    lines.append(f"trace report — {path}")
    lines.append(f"  run id       {_fmt(summary['run'])}")
    lines.append(f"  events       {summary['events']}")
    lines.append(f"  makespan     {_fmt(summary['makespan'])} "
                 f"(wall {_fmt(summary['wall_makespan'])})")
    lines.append(f"  tasks        {_fmt(summary['tasks'])}")
    lines.append(f"  tasks/sec    {_fmt(summary['tasks_per_sec'])}")

    if summary["timeline"]:
        lines.append("")
        lines.append("timeline")
        for entry in summary["timeline"]:
            lines.append(f"  [{_fmt(entry['seq']):>5}] "
                         f"t={_fmt(entry['time']):>8}  "
                         f"{entry['category']:<24} {entry['message']}")

    if summary["nodes"]:
        lines.append("")
        lines.append("per-node dispatches")
        lines.append(f"  {'node':<18} {'issued':>7} {'resolved':>9} "
                     f"{'lost':>5} {'busy':>9} {'util':>6}")
        for name in sorted(summary["nodes"]):
            row = summary["nodes"][name]
            util = (f"{row['utilization'] * 100:.0f}%"
                    if row["utilization"] is not None else "n/a")
            lines.append(f"  {name:<18} {row['dispatches']:>7} "
                         f"{row['resolved']:>9} {row['lost']:>5} "
                         f"{_fmt(row['busy']):>9} {util:>6}")

    adaptation = summary["adaptation"]
    lines.append("")
    lines.append("adaptation")
    lines.append(f"  windows {len(adaptation['windows'])}  "
                 f"breaches {adaptation['breaches']}  "
                 f"recalibrations {adaptation['recalibrations']}  "
                 f"reranks {adaptation['reranks']}  "
                 f"failovers {adaptation['failovers']}  "
                 f"requeued {adaptation['requeued_tasks']}")
    for window in adaptation["windows"]:
        mark = "BREACH" if window["breached"] else "ok"
        lines.append(f"  round {_fmt(window['round']):>3}  "
                     f"n={_fmt(window['samples']):<4} "
                     f"min={_fmt(window['observed_min']):>9} "
                     f"z={_fmt(window['threshold']):>9}  {mark:<6} "
                     f"{_fmt(window['action'])}")

    cluster = summary["cluster"]
    if any([cluster["registers"], cluster["rejoins"], cluster["deaths"],
            cluster["payload_ships"]]):
        lines.append("")
        lines.append("cluster")
        lines.append(f"  registers {cluster['registers']}  "
                     f"rejoins {cluster['rejoins']}  "
                     f"deaths {len(cluster['deaths'])}  "
                     f"payload ships {cluster['payload_ships']}")
        for death in cluster["deaths"]:
            lines.append(f"  death [{_fmt(death['seq']):>5}] "
                         f"{_fmt(death['node'])}: {_fmt(death['reason'])}")
    return "\n".join(lines)


#: The comparable scalar rows of a diff, in display order.
_DIFF_ROWS = [
    ("events", "events"),
    ("makespan", "makespan"),
    ("wall makespan", "wall_makespan"),
    ("tasks", "tasks"),
    ("tasks/sec", "tasks_per_sec"),
]
_DIFF_NESTED = [
    ("breaches", "adaptation", "breaches"),
    ("recalibrations", "adaptation", "recalibrations"),
    ("reranks", "adaptation", "reranks"),
    ("requeued tasks", "adaptation", "requeued_tasks"),
    ("deaths", "cluster", "deaths"),
    ("rejoins", "cluster", "rejoins"),
]


def _diff_value(summary: Dict[str, Any], *keys: str) -> Any:
    value: Any = summary
    for key in keys:
        value = value[key]
    if isinstance(value, list):
        return len(value)
    return value


def _diff_summary(a: Dict[str, Any], b: Dict[str, Any]) -> Dict[str, Any]:
    rows = []
    for label, key in _DIFF_ROWS:
        rows.append((label, _diff_value(a, key), _diff_value(b, key)))
    for label, *keys in _DIFF_NESTED:
        rows.append((label, _diff_value(a, *keys), _diff_value(b, *keys)))
    out = {}
    for label, va, vb in rows:
        delta = (vb - va if isinstance(va, (int, float))
                 and isinstance(vb, (int, float))
                 and not isinstance(va, bool) else None)
        out[label] = {"a": va, "b": vb, "delta": delta}
    return out


def _render_diff_text(diff: Dict[str, Any], path_a: str,
                      path_b: str) -> str:
    lines = [f"trace diff — a: {path_a}   b: {path_b}", ""]
    lines.append(f"  {'':<16} {'a':>12} {'b':>12} {'delta':>12}")
    for label, row in diff.items():
        lines.append(f"  {label:<16} {_fmt(row['a']):>12} "
                     f"{_fmt(row['b']):>12} {_fmt(row['delta']):>12}")
    return "\n".join(lines)


# ----------------------------------------------------------- regression gating
#: Profile keys, their human labels, and the direction a regression moves
#: (purely informational — the baseline spec decides what is checked).
_PROFILE_KEYS = [
    "tasks", "makespan", "wall_makespan", "tasks_per_sec",
    "dispatches", "lost", "requeued", "breaches", "recalibrations",
    "reranks", "latency_p50", "latency_p95", "latency_p99", "latency_max",
]


def profile_from_events(events: List[Dict[str, Any]]) -> Dict[str, Any]:
    """The per-run perf profile computed from a JSONL trace."""
    summary = summarize(events)
    elapsed = [
        float(event["data"]["elapsed"])
        for event in events
        if event.get("category") == "dispatch.resolve"
        and (event.get("data") or {}).get("elapsed") is not None
    ]
    nodes = summary["nodes"].values()
    adaptation = summary["adaptation"]
    return {
        "source": "trace",
        "tasks": summary["tasks"],
        "makespan": summary["makespan"],
        "wall_makespan": summary["wall_makespan"],
        "tasks_per_sec": summary["tasks_per_sec"],
        "dispatches": sum(row["dispatches"] for row in nodes),
        "lost": sum(row["lost"] for row in nodes),
        "requeued": adaptation["requeued_tasks"],
        "breaches": adaptation["breaches"],
        "recalibrations": adaptation["recalibrations"],
        "reranks": adaptation["reranks"],
        "latency_p50": percentile(elapsed, 50) if elapsed else None,
        "latency_p95": percentile(elapsed, 95) if elapsed else None,
        "latency_p99": percentile(elapsed, 99) if elapsed else None,
        "latency_max": max(elapsed) if elapsed else None,
    }


def profile_from_snapshot(snapshot: Dict[str, Any]) -> Dict[str, Any]:
    """The per-run perf profile computed from a metrics snapshot.

    Counter totals sum exactly across label sets; latency percentiles of
    several ``dispatch.latency`` series are folded as count-weighted
    means (an approximation — per-series reservoirs cannot be re-merged
    from a snapshot), which the generous gate tolerances absorb.
    """
    totals: Dict[str, float] = {}
    latencies: List[Dict[str, Any]] = []
    for entry in snapshot.get("series", []):
        name = entry.get("name")
        if entry.get("type") == "histogram":
            if name == "dispatch.latency" and entry.get("count"):
                latencies.append(entry)
            continue
        value = entry.get("value")
        if value is not None:
            totals[name] = totals.get(name, 0.0) + float(value)

    def weighted(stat: str) -> Optional[float]:
        pairs = [(entry[stat], entry["count"]) for entry in latencies
                 if entry.get(stat) is not None]
        if not pairs:
            return None
        weight = sum(count for _, count in pairs)
        return sum(value * count for value, count in pairs) / weight

    tasks = totals.get("tasks.completed") or None
    makespan = (snapshot.get("meta") or {}).get("time")
    maxima = [entry["max"] for entry in latencies
              if entry.get("max") is not None]
    return {
        "source": "metrics",
        "tasks": tasks,
        "makespan": makespan,
        "wall_makespan": None,
        "tasks_per_sec": (tasks / makespan) if tasks and makespan else None,
        "dispatches": totals.get("dispatch.issued", 0.0),
        "lost": totals.get("dispatch.lost", 0.0),
        "requeued": totals.get("tasks.requeued", 0.0),
        "breaches": totals.get("adaptation.breaches", 0.0),
        "recalibrations": totals.get("adaptation.recalibrations", 0.0),
        "reranks": totals.get("adaptation.reranks", 0.0),
        "latency_p50": weighted("p50"),
        "latency_p95": weighted("p95"),
        "latency_p99": weighted("p99"),
        "latency_max": max(maxima) if maxima else None,
    }


def build_profile(path: str) -> Dict[str, Any]:
    """The perf profile of one run file — trace JSONL or metrics snapshot.

    A file that parses as a single JSON object with a ``series`` list is
    a dumped :meth:`~repro.metrics.MetricsRegistry.snapshot`; anything
    else is treated as a JSONL trace.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError as exc:
        raise TraceCliError(f"cannot read {path!r}: {exc}") from exc
    try:
        document = json.loads(text)
    except json.JSONDecodeError:
        document = None
    if isinstance(document, dict) and isinstance(document.get("series"), list):
        return profile_from_snapshot(document)
    return profile_from_events(load_events(path))


def load_baseline(path: str) -> Dict[str, Any]:
    """Parse a committed baseline file (``{"keys": {name: spec}}``)."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
    except OSError as exc:
        raise TraceCliError(f"cannot read {path!r}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise TraceCliError(f"{path}: not valid JSON ({exc.msg})") from exc
    if not isinstance(baseline, dict) or not isinstance(
            baseline.get("keys"), dict):
        raise TraceCliError(f"{path}: not a baseline (no \"keys\" object)")
    return baseline


def _check_spec(value: Optional[float],
                spec: Optional[Dict[str, Any]]) -> Tuple[str, str]:
    """One profile value against one baseline spec → (status, detail).

    Spec forms (combinable): ``{"expect": E, "tolerance": T}`` passes
    when ``|value - E| <= T`` (``rel_tolerance`` scales T off E instead),
    ``{"min": M}`` / ``{"max": M}`` bound the value.  A null spec, or a
    profile value the run could not measure, is skipped — committed
    baselines stay host-independent by nulling wall-time keys.
    """
    if spec is None:
        return "skipped", "no constraint"
    if value is None:
        return "skipped", "not measured"
    checks: List[str] = []
    if "expect" in spec:
        expect = float(spec["expect"])
        tolerance = float(spec.get("tolerance", 0.0))
        if "rel_tolerance" in spec:
            tolerance = max(tolerance,
                            abs(expect) * float(spec["rel_tolerance"]))
        if abs(value - expect) > tolerance:
            return "REGRESSION", (f"expected {expect:g} ± {tolerance:g}, "
                                  f"got {value:g}")
        checks.append(f"within {expect:g} ± {tolerance:g}")
    if "min" in spec and value < float(spec["min"]):
        return "REGRESSION", f">= {float(spec['min']):g} required, got {value:g}"
    if "max" in spec and value > float(spec["max"]):
        return "REGRESSION", f"<= {float(spec['max']):g} allowed, got {value:g}"
    if "min" in spec:
        checks.append(f">= {float(spec['min']):g}")
    if "max" in spec:
        checks.append(f"<= {float(spec['max']):g}")
    if not checks:
        return "skipped", "empty constraint"
    return "ok", ", ".join(checks)


def evaluate_baseline(profile: Dict[str, Any],
                      baseline: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Check every baseline key against the profile; rows in key order."""
    rows = []
    for key, spec in baseline["keys"].items():
        if spec is not None and not isinstance(spec, dict):
            raise TraceCliError(
                f"baseline key {key!r}: spec must be an object or null")
        status, detail = _check_spec(profile.get(key), spec)
        rows.append({"key": key, "value": profile.get(key),
                     "status": status, "detail": detail})
    return rows


def _render_regress_text(rows: List[Dict[str, Any]], profile: Dict[str, Any],
                         run_path: str, baseline_path: str) -> str:
    lines = [f"perf regression gate — run: {run_path} "
             f"({profile['source']})   baseline: {baseline_path}", ""]
    lines.append(f"  {'key':<18} {'value':>12} {'status':<12} constraint")
    for row in rows:
        lines.append(f"  {row['key']:<18} {_fmt(row['value']):>12} "
                     f"{row['status']:<12} {row['detail']}")
    regressions = sum(1 for row in rows if row["status"] == "REGRESSION")
    lines.append("")
    lines.append(f"{regressions} regression(s), "
                 f"{sum(1 for r in rows if r['status'] == 'ok')} ok, "
                 f"{sum(1 for r in rows if r['status'] == 'skipped')} skipped")
    return "\n".join(lines)


# ----------------------------------------------------------------- entry point
def _cmd_report(args: argparse.Namespace) -> int:
    summary = summarize(load_events(args.trace))
    if args.format == "json":
        print(json.dumps(summary, indent=2))
    else:
        print(_render_report_text(summary, args.trace))
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    summary_a = summarize(load_events(args.trace_a))
    summary_b = summarize(load_events(args.trace_b))
    diff = _diff_summary(summary_a, summary_b)
    if args.format == "json":
        print(json.dumps({"a": summary_a, "b": summary_b, "diff": diff},
                         indent=2))
    else:
        print(_render_diff_text(diff, args.trace_a, args.trace_b))
    return 0


def _cmd_regress(args: argparse.Namespace) -> int:
    profile = build_profile(args.run)
    if args.write_baseline:
        # Seed a baseline from this run: exact counts become generous
        # ±50% expectations, host-dependent timings are left null for
        # hand-tuning.  Review before committing.
        keys: Dict[str, Any] = {}
        for key in _PROFILE_KEYS:
            value = profile.get(key)
            if value is None or key.startswith(("latency_", "wall")) \
                    or key in ("makespan", "tasks_per_sec"):
                keys[key] = None
            else:
                keys[key] = {"expect": value, "rel_tolerance": 0.5}
        baseline = {"description": f"seeded from {args.run}", "keys": keys}
        with open(args.baseline, "w", encoding="utf-8") as handle:
            json.dump(baseline, handle, indent=2)
            handle.write("\n")
        print(f"baseline written to {args.baseline}")
        return 0
    rows = evaluate_baseline(profile, load_baseline(args.baseline))
    regressed = any(row["status"] == "REGRESSION" for row in rows)
    if args.format == "json":
        print(json.dumps({"profile": profile, "checks": rows,
                          "regressed": regressed}, indent=2))
    else:
        print(_render_regress_text(rows, profile, args.run, args.baseline))
    return 1 if regressed else 0


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.trace",
        description="Report/diff recorded GRASP run traces (JSONL).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    report = sub.add_parser("report", help="summarise one run trace")
    report.add_argument("trace", help="path to a run's .jsonl trace")
    report.add_argument("--format", choices=("text", "json"),
                        default="text")
    report.set_defaults(func=_cmd_report)

    diff = sub.add_parser("diff", help="compare two run traces")
    diff.add_argument("trace_a", help="baseline run trace")
    diff.add_argument("trace_b", help="comparison run trace")
    diff.add_argument("--format", choices=("text", "json"), default="text")
    diff.set_defaults(func=_cmd_diff)

    regress = sub.add_parser(
        "regress",
        help="gate a run's perf profile against a committed baseline")
    regress.add_argument(
        "run", help="a run's .jsonl trace or dumped metrics snapshot")
    regress.add_argument("--baseline", required=True,
                         help="baseline JSON with per-key constraints")
    regress.add_argument("--write-baseline", action="store_true",
                         help="seed the baseline file from this run "
                              "instead of gating against it")
    regress.add_argument("--format", choices=("text", "json"),
                         default="text")
    regress.set_defaults(func=_cmd_regress)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Run the CLI; returns the process exit code.

    0 on success, 1 when ``regress`` found a regression, 2 on an
    unreadable/malformed input or usage error.
    """
    parser = _build_parser()
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:   # argparse: usage error (2) or --help (0)
        code = exc.code
        return code if isinstance(code, int) else 2
    try:
        return args.func(args)
    except TraceCliError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Downstream pager/head closed the pipe mid-report: the Unix
        # convention is a silent exit.  Re-point stdout at devnull so
        # the interpreter's shutdown flush does not print a second
        # traceback for the same dead pipe.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":      # pragma: no cover - python -m repro.trace.cli
    sys.exit(main(sys.argv[1:]))
