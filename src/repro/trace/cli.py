"""Report/diff CLI over recorded JSONL run traces.

See the package docstring for usage.  Everything here operates on plain
event dicts (the :meth:`repro.utils.tracing.TraceEvent.to_dict` shape),
so traces recorded by other processes — cluster runs, CI smoke jobs —
are first-class inputs.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, Dict, List, Optional

__all__ = ["TraceCliError", "load_events", "main", "summarize"]


class TraceCliError(Exception):
    """An unreadable or malformed trace file (CLI exit code 2)."""


# --------------------------------------------------------------------- loading
def load_events(path: str) -> List[Dict[str, Any]]:
    """Parse one JSONL trace file into event dicts, in file order.

    Raises :class:`TraceCliError` on a missing/unreadable file, a line
    that is not valid JSON, or a line that is not an event object.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
    except OSError as exc:
        raise TraceCliError(f"cannot read {path!r}: {exc}") from exc
    events: List[Dict[str, Any]] = []
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TraceCliError(
                f"{path}:{lineno}: not valid JSON ({exc.msg})"
            ) from exc
        if not isinstance(event, dict) or "category" not in event:
            raise TraceCliError(
                f"{path}:{lineno}: not a trace event (no category)"
            )
        events.append(event)
    return events


# ----------------------------------------------------------------- summarising
def _virtual_span(events: List[Dict[str, Any]]) -> Optional[float]:
    times = [e["time"] for e in events if e.get("time") is not None]
    return (max(times) - min(times)) if len(times) >= 2 else None


def _wall_span(events: List[Dict[str, Any]]) -> Optional[float]:
    walls = [e["wall"] for e in events if e.get("wall")]
    return (max(walls) - min(walls)) if len(walls) >= 2 else None


def summarize(events: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Fold one run's events into the report structure (JSON-friendly)."""
    categories: Dict[str, int] = {}
    nodes: Dict[str, Dict[str, Any]] = {}
    windows: List[Dict[str, Any]] = []
    deaths: List[Dict[str, Any]] = []
    timeline: List[Dict[str, Any]] = []
    counts = {"recalibrations": 0, "reranks": 0, "failovers": 0,
              "registers": 0, "rejoins": 0, "payload_ships": 0}
    requeued = 0
    programmed = 0
    completed = 0

    def node_row(name: str) -> Dict[str, Any]:
        return nodes.setdefault(
            name, {"dispatches": 0, "resolved": 0, "failed": 0,
                   "lost": 0, "busy": 0.0, "utilization": None})

    for event in events:
        category = event.get("category", "")
        data = event.get("data") or {}
        categories[category] = categories.get(category, 0) + 1
        if category.startswith("phase."):
            timeline.append({"seq": event.get("seq"),
                             "time": event.get("time"),
                             "category": category,
                             "message": event.get("message", "")})
        elif category == "dispatch.issue":
            node_row(str(data.get("node")))["dispatches"] += 1
        elif category == "dispatch.resolve":
            row = node_row(str(data.get("node")))
            row["resolved"] += 1
            if data.get("ok") is False:
                row["failed"] += 1
            row["busy"] += float(data.get("elapsed") or 0.0)
        elif category == "dispatch.lost":
            node_row(str(data.get("node")))["lost"] += 1
        elif category == "adaptation.window":
            windows.append({
                "round": data.get("round"),
                "samples": data.get("samples"),
                "observed_min": data.get("observed_min"),
                "threshold": data.get("threshold"),
                "breached": bool(data.get("breached")),
                "action": data.get("action"),
            })
        elif category == "adaptation.recalibrate":
            counts["recalibrations"] += 1
        elif category == "adaptation.rerank":
            counts["reranks"] += 1
        elif category == "adaptation.failover":
            counts["failovers"] += 1
        elif category == "task.requeue":
            requeued += int(data.get("count") or 0)
        elif category == "cluster.register":
            counts["registers"] += 1
        elif category == "cluster.rejoin":
            counts["rejoins"] += 1
        elif category == "cluster.payload_ship":
            counts["payload_ships"] += 1
        elif category == "cluster.death":
            deaths.append({"seq": event.get("seq"),
                           "node": data.get("node"),
                           "reason": data.get("reason")})
        if category == "phase.programming":
            programmed += int(data.get("tasks") or 0)
        elif category == "phase.execution.end":
            completed += int(data.get("results") or 0)

    # The programmed task count includes calibration probes; execution
    # results alone undercount them, so prefer the former when present.
    tasks = programmed or completed
    makespan = _virtual_span(events)
    wall = _wall_span(events)
    span = makespan if makespan else wall
    for row in nodes.values():
        row["utilization"] = (row["busy"] / span) if span else None
    tasks_per_sec = (tasks / span) if (span and tasks) else None

    return {
        "run": events[0].get("run") if events else None,
        "events": len(events),
        "categories": categories,
        "makespan": makespan,
        "wall_makespan": wall,
        "tasks": tasks or None,
        "tasks_per_sec": tasks_per_sec,
        "timeline": timeline,
        "nodes": nodes,
        "adaptation": {
            "windows": windows,
            "breaches": sum(1 for w in windows if w["breached"]),
            "recalibrations": counts["recalibrations"],
            "reranks": counts["reranks"],
            "failovers": counts["failovers"],
            "requeued_tasks": requeued,
        },
        "cluster": {
            "registers": counts["registers"],
            "rejoins": counts["rejoins"],
            "payload_ships": counts["payload_ships"],
            "deaths": deaths,
        },
    }


# ------------------------------------------------------------------ rendering
def _fmt(value: Any, precision: int = 4) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{precision}g}"
    return str(value)


def _render_report_text(summary: Dict[str, Any], path: str) -> str:
    lines: List[str] = []
    lines.append(f"trace report — {path}")
    lines.append(f"  run id       {_fmt(summary['run'])}")
    lines.append(f"  events       {summary['events']}")
    lines.append(f"  makespan     {_fmt(summary['makespan'])} "
                 f"(wall {_fmt(summary['wall_makespan'])})")
    lines.append(f"  tasks        {_fmt(summary['tasks'])}")
    lines.append(f"  tasks/sec    {_fmt(summary['tasks_per_sec'])}")

    if summary["timeline"]:
        lines.append("")
        lines.append("timeline")
        for entry in summary["timeline"]:
            lines.append(f"  [{_fmt(entry['seq']):>5}] "
                         f"t={_fmt(entry['time']):>8}  "
                         f"{entry['category']:<24} {entry['message']}")

    if summary["nodes"]:
        lines.append("")
        lines.append("per-node dispatches")
        lines.append(f"  {'node':<18} {'issued':>7} {'resolved':>9} "
                     f"{'lost':>5} {'busy':>9} {'util':>6}")
        for name in sorted(summary["nodes"]):
            row = summary["nodes"][name]
            util = (f"{row['utilization'] * 100:.0f}%"
                    if row["utilization"] is not None else "-")
            lines.append(f"  {name:<18} {row['dispatches']:>7} "
                         f"{row['resolved']:>9} {row['lost']:>5} "
                         f"{_fmt(row['busy']):>9} {util:>6}")

    adaptation = summary["adaptation"]
    lines.append("")
    lines.append("adaptation")
    lines.append(f"  windows {len(adaptation['windows'])}  "
                 f"breaches {adaptation['breaches']}  "
                 f"recalibrations {adaptation['recalibrations']}  "
                 f"reranks {adaptation['reranks']}  "
                 f"failovers {adaptation['failovers']}  "
                 f"requeued {adaptation['requeued_tasks']}")
    for window in adaptation["windows"]:
        mark = "BREACH" if window["breached"] else "ok"
        lines.append(f"  round {_fmt(window['round']):>3}  "
                     f"n={_fmt(window['samples']):<4} "
                     f"min={_fmt(window['observed_min']):>9} "
                     f"z={_fmt(window['threshold']):>9}  {mark:<6} "
                     f"{_fmt(window['action'])}")

    cluster = summary["cluster"]
    if any([cluster["registers"], cluster["rejoins"], cluster["deaths"],
            cluster["payload_ships"]]):
        lines.append("")
        lines.append("cluster")
        lines.append(f"  registers {cluster['registers']}  "
                     f"rejoins {cluster['rejoins']}  "
                     f"deaths {len(cluster['deaths'])}  "
                     f"payload ships {cluster['payload_ships']}")
        for death in cluster["deaths"]:
            lines.append(f"  death [{_fmt(death['seq']):>5}] "
                         f"{_fmt(death['node'])}: {_fmt(death['reason'])}")
    return "\n".join(lines)


#: The comparable scalar rows of a diff, in display order.
_DIFF_ROWS = [
    ("events", "events"),
    ("makespan", "makespan"),
    ("wall makespan", "wall_makespan"),
    ("tasks", "tasks"),
    ("tasks/sec", "tasks_per_sec"),
]
_DIFF_NESTED = [
    ("breaches", "adaptation", "breaches"),
    ("recalibrations", "adaptation", "recalibrations"),
    ("reranks", "adaptation", "reranks"),
    ("requeued tasks", "adaptation", "requeued_tasks"),
    ("deaths", "cluster", "deaths"),
    ("rejoins", "cluster", "rejoins"),
]


def _diff_value(summary: Dict[str, Any], *keys: str) -> Any:
    value: Any = summary
    for key in keys:
        value = value[key]
    if isinstance(value, list):
        return len(value)
    return value


def _diff_summary(a: Dict[str, Any], b: Dict[str, Any]) -> Dict[str, Any]:
    rows = []
    for label, key in _DIFF_ROWS:
        rows.append((label, _diff_value(a, key), _diff_value(b, key)))
    for label, *keys in _DIFF_NESTED:
        rows.append((label, _diff_value(a, *keys), _diff_value(b, *keys)))
    out = {}
    for label, va, vb in rows:
        delta = (vb - va if isinstance(va, (int, float))
                 and isinstance(vb, (int, float))
                 and not isinstance(va, bool) else None)
        out[label] = {"a": va, "b": vb, "delta": delta}
    return out


def _render_diff_text(diff: Dict[str, Any], path_a: str,
                      path_b: str) -> str:
    lines = [f"trace diff — a: {path_a}   b: {path_b}", ""]
    lines.append(f"  {'':<16} {'a':>12} {'b':>12} {'delta':>12}")
    for label, row in diff.items():
        lines.append(f"  {label:<16} {_fmt(row['a']):>12} "
                     f"{_fmt(row['b']):>12} {_fmt(row['delta']):>12}")
    return "\n".join(lines)


# ----------------------------------------------------------------- entry point
def _cmd_report(args: argparse.Namespace) -> int:
    summary = summarize(load_events(args.trace))
    if args.format == "json":
        print(json.dumps(summary, indent=2))
    else:
        print(_render_report_text(summary, args.trace))
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    summary_a = summarize(load_events(args.trace_a))
    summary_b = summarize(load_events(args.trace_b))
    diff = _diff_summary(summary_a, summary_b)
    if args.format == "json":
        print(json.dumps({"a": summary_a, "b": summary_b, "diff": diff},
                         indent=2))
    else:
        print(_render_diff_text(diff, args.trace_a, args.trace_b))
    return 0


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.trace",
        description="Report/diff recorded GRASP run traces (JSONL).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    report = sub.add_parser("report", help="summarise one run trace")
    report.add_argument("trace", help="path to a run's .jsonl trace")
    report.add_argument("--format", choices=("text", "json"),
                        default="text")
    report.set_defaults(func=_cmd_report)

    diff = sub.add_parser("diff", help="compare two run traces")
    diff.add_argument("trace_a", help="baseline run trace")
    diff.add_argument("trace_b", help="comparison run trace")
    diff.add_argument("--format", choices=("text", "json"), default="text")
    diff.set_defaults(func=_cmd_diff)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Run the CLI; returns the process exit code (0 ok, 2 error)."""
    parser = _build_parser()
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:   # argparse: usage error (2) or --help (0)
        code = exc.code
        return code if isinstance(code, int) else 2
    try:
        return args.func(args)
    except TraceCliError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Downstream pager/head closed the pipe mid-report: the Unix
        # convention is a silent exit.  Re-point stdout at devnull so
        # the interpreter's shutdown flush does not print a second
        # traceback for the same dead pipe.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":      # pragma: no cover - python -m repro.trace.cli
    sys.exit(main(sys.argv[1:]))
