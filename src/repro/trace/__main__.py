"""Entry point: ``python -m repro.trace``."""

import sys

from repro.trace.cli import main

if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
