"""Forensics over recorded JSONL run traces: ``python -m repro.trace``.

The runtime's event stream (see :mod:`repro.utils.tracing`) lands in a
JSONL file when ``GRASP_TRACE=<path>`` / ``GraspConfig.trace_path`` /
``Grasp(..., trace_path=...)`` is set.  This package reads those files
back:

* ``python -m repro.trace report run.jsonl`` — run timeline, per-node
  utilization and loss counts, the adaptation-event table, cluster
  membership events (``--format json`` for machine consumption);
* ``python -m repro.trace diff a.jsonl b.jsonl`` — makespan, tasks/sec
  and adaptation/death counts of two runs side by side;
* ``python -m repro.trace regress run.jsonl --baseline base.json`` —
  compute the run's perf profile (makespan, tasks/sec, dispatch-latency
  percentiles, loss/adaptation counts) from a trace *or* a dumped
  metrics snapshot (``GRASP_METRICS=<path>``), gate it against a
  committed baseline of per-key tolerances, and exit nonzero on a
  regression (``--write-baseline`` seeds the baseline from a good run).

Exit codes: ``0`` on success, ``1`` when ``regress`` found a
regression, ``2`` on usage errors, unreadable files or malformed trace
lines.
"""

from repro.trace.cli import (
    build_profile,
    evaluate_baseline,
    load_events,
    main,
    summarize,
)

__all__ = ["build_profile", "evaluate_baseline", "load_events", "main",
           "summarize"]
