"""Tests for the pipeline skeleton."""

from __future__ import annotations

import pytest

from repro.exceptions import SkeletonError
from repro.skeletons.pipeline import Pipeline, Stage


class TestStage:
    def test_default_cost_is_one(self):
        stage = Stage(fn=lambda x: x)
        assert stage.cost("anything") == 1.0

    def test_custom_cost_model(self):
        stage = Stage(fn=lambda x: x, cost_model=lambda item: len(item))
        assert stage.cost([1, 2, 3]) == 3.0

    def test_non_callable_rejected(self):
        with pytest.raises(SkeletonError):
            Stage(fn="nope")


class TestPipelineConstruction:
    def test_empty_pipeline_rejected(self):
        with pytest.raises(SkeletonError):
            Pipeline([])

    def test_non_stage_rejected(self):
        with pytest.raises(SkeletonError):
            Pipeline([lambda x: x])

    def test_stage_names_default(self):
        pipe = Pipeline([Stage(lambda x: x), Stage(lambda x: x)])
        assert [s.name for s in pipe.stages] == ["stage0", "stage1"]

    def test_explicit_stage_names_kept(self):
        pipe = Pipeline([Stage(lambda x: x, name="load"), Stage(lambda x: x)])
        assert pipe.stages[0].name == "load"

    def test_num_stages(self):
        assert Pipeline([Stage(lambda x: x)] ).num_stages == 1


class TestPipelineProperties:
    def test_min_nodes_equals_stage_count(self):
        pipe = Pipeline([Stage(lambda x: x) for _ in range(3)])
        assert pipe.properties.min_nodes == 3

    def test_redistributable_only_with_replicable_stage(self):
        fixed = Pipeline([Stage(lambda x: x)])
        flexible = Pipeline([Stage(lambda x: x, replicable=True)])
        assert not fixed.properties.redistributable
        assert flexible.properties.redistributable

    def test_monitoring_unit(self):
        assert Pipeline([Stage(lambda x: x)]).properties.monitoring_unit == "stage_round"


class TestPipelineSemantics:
    def test_run_sequential(self, arithmetic_pipeline):
        expected = [((x + 1) * 2) - 3 for x in range(5)]
        assert arithmetic_pipeline.run_sequential(range(5)) == expected

    def test_run_item(self, arithmetic_pipeline):
        assert arithmetic_pipeline.run_item(10) == ((10 + 1) * 2) - 3

    def test_apply_stage(self, arithmetic_pipeline):
        assert arithmetic_pipeline.apply_stage(0, 1) == 2
        assert arithmetic_pipeline.apply_stage(1, 2) == 4
        with pytest.raises(SkeletonError):
            arithmetic_pipeline.apply_stage(9, 1)

    def test_stage_cost_lookup(self):
        pipe = Pipeline([
            Stage(lambda x: x, cost_model=lambda i: 1.0),
            Stage(lambda x: x, cost_model=lambda i: 5.0),
        ])
        assert pipe.stage_cost(0, "x") == 1.0
        assert pipe.stage_cost(1, "x") == 5.0
        with pytest.raises(SkeletonError):
            pipe.stage_cost(2, "x")

    def test_total_cost_accumulates_through_stages(self):
        pipe = Pipeline([
            Stage(lambda x: x * 2, cost_model=lambda item: float(item)),
            Stage(lambda x: x, cost_model=lambda item: float(item)),
        ])
        # Item 3: stage0 cost 3, output 6; stage1 cost 6 → total 9.
        assert pipe.total_cost(3) == pytest.approx(9.0)

    def test_make_tasks_first_stage_cost(self):
        pipe = Pipeline([
            Stage(lambda x: x, cost_model=lambda item: 2.5),
            Stage(lambda x: x, cost_model=lambda item: 100.0),
        ])
        tasks = pipe.make_tasks([1, 2])
        assert all(t.cost == 2.5 for t in tasks)
        assert [t.stage for t in tasks] == [0, 0]

    def test_make_tasks_empty_rejected(self, arithmetic_pipeline):
        with pytest.raises(SkeletonError):
            arithmetic_pipeline.make_tasks([])

    def test_ordered_by_default(self, arithmetic_pipeline):
        assert arithmetic_pipeline.properties.ordered_output
