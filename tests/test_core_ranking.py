"""Tests for node ranking (the statistical heart of Algorithm 1)."""

from __future__ import annotations

import pytest

from repro.core.ranking import NodeScore, RankingMode, rank_nodes
from repro.exceptions import CalibrationError


class TestTimeOnlyRanking:
    def test_faster_node_ranks_first(self):
        ranked = rank_nodes({"slow": [4.0, 4.2], "fast": [1.0, 1.1]})
        assert [s.node_id for s in ranked] == ["fast", "slow"]
        assert ranked[0].score < ranked[1].score

    def test_mean_time_recorded(self):
        ranked = rank_nodes({"n": [2.0, 4.0]})
        assert ranked[0].mean_time == pytest.approx(3.0)
        assert ranked[0].observations == 2

    def test_deterministic_tie_break_by_name(self):
        ranked = rank_nodes({"b": [1.0], "a": [1.0]})
        assert [s.node_id for s in ranked] == ["a", "b"]

    def test_empty_rejected(self):
        with pytest.raises(CalibrationError):
            rank_nodes({})

    def test_node_without_observations_rejected(self):
        with pytest.raises(CalibrationError):
            rank_nodes({"a": []})


class TestUnivariateRanking:
    def test_load_adjustment_promotes_momentarily_loaded_fast_node(self):
        """A fast node observed under heavy transient load should outrank a
        genuinely slow idle node once the load forecast says it will be idle."""
        times = {
            # fast node: intrinsically 1.0 s/unit but observed at 2.0 under 0.5 load
            "fast-but-loaded": [2.0, 2.1],
            # slow node: intrinsically 1.8 s/unit, idle
            "slow-idle": [1.8, 1.8],
            # reference nodes establishing the time~load relationship
            "ref-idle": [1.0, 1.0],
            "ref-loaded": [2.0, 2.0],
        }
        loads = {
            "fast-but-loaded": [0.5, 0.5],
            "slow-idle": [0.0, 0.0],
            "ref-idle": [0.0, 0.0],
            "ref-loaded": [0.5, 0.5],
        }
        forecasts = {"fast-but-loaded": 0.0, "slow-idle": 0.0,
                     "ref-idle": 0.0, "ref-loaded": 0.5}
        ranked = rank_nodes(times, loads=loads, forecast_loads=forecasts,
                            mode=RankingMode.UNIVARIATE)
        order = [s.node_id for s in ranked]
        assert order.index("fast-but-loaded") < order.index("slow-idle")

    def test_time_only_would_get_that_case_wrong(self):
        times = {"fast-but-loaded": [2.0, 2.1], "slow-idle": [1.8, 1.8]}
        ranked = rank_nodes(times, mode=RankingMode.TIME_ONLY)
        assert ranked[0].node_id == "slow-idle"

    def test_degenerate_load_variance_falls_back_to_time(self):
        times = {"a": [1.0], "b": [2.0]}
        loads = {"a": [0.3], "b": [0.3]}
        ranked = rank_nodes(times, loads=loads, mode=RankingMode.UNIVARIATE)
        assert [s.node_id for s in ranked] == ["a", "b"]

    def test_missing_loads_fall_back_gracefully(self):
        ranked = rank_nodes({"a": [1.0, 1.0], "b": [2.0, 2.0]},
                            mode=RankingMode.UNIVARIATE)
        assert [s.node_id for s in ranked] == ["a", "b"]


class TestMultivariateRanking:
    def test_bandwidth_aware_ranking_runs(self):
        times = {"a": [1.0, 1.2, 0.9], "b": [2.0, 2.1, 1.9], "c": [1.5, 1.4, 1.6]}
        loads = {"a": [0.1, 0.2, 0.0], "b": [0.5, 0.6, 0.4], "c": [0.3, 0.2, 0.4]}
        bws = {"a": [1e7] * 3, "b": [1e6] * 3, "c": [5e6] * 3}
        ranked = rank_nodes(times, loads=loads, bandwidths=bws,
                            mode=RankingMode.MULTIVARIATE)
        assert len(ranked) == 3
        assert all(isinstance(s, NodeScore) for s in ranked)
        assert all(s.score > 0 for s in ranked)

    def test_statistical_mode_keeps_all_nodes(self):
        times = {f"n{i}": [1.0 + i] for i in range(5)}
        loads = {f"n{i}": [0.1 * i] for i in range(5)}
        ranked = rank_nodes(times, loads=loads, mode=RankingMode.MULTIVARIATE)
        assert {s.node_id for s in ranked} == {f"n{i}" for i in range(5)}

    def test_mean_bandwidth_surfaced(self):
        ranked = rank_nodes({"a": [1.0]}, bandwidths={"a": [2e6]})
        assert ranked[0].mean_bandwidth == pytest.approx(2e6)


class TestScoresSorted:
    @pytest.mark.parametrize("mode", list(RankingMode))
    def test_scores_are_non_decreasing(self, mode):
        times = {f"n{i}": [1.0 + 0.5 * i, 1.1 + 0.5 * i] for i in range(6)}
        loads = {f"n{i}": [0.05 * i, 0.05 * i + 0.02] for i in range(6)}
        bws = {f"n{i}": [1e7 / (i + 1)] * 2 for i in range(6)}
        ranked = rank_nodes(times, loads=loads, bandwidths=bws, mode=mode)
        scores = [s.score for s in ranked]
        assert scores == sorted(scores)
