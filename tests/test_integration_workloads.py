"""End-to-end integration tests: real workloads through the full GRASP stack."""

from __future__ import annotations

import math

import pytest

from repro.analysis.metrics import summarise_run
from repro.baselines.static_farm import StaticFarm
from repro.baselines.static_pipeline import StaticPipeline
from repro.core.grasp import Grasp
from repro.core.phases import Phase
from repro.grid.topology import GridBuilder
from repro.workloads.imaging import ImagingWorkload
from repro.workloads.matrix import MatrixWorkload
from repro.workloads.montecarlo import MonteCarloWorkload
from repro.workloads.parameter_sweep import ParameterSweep
from repro.workloads.synthetic import SyntheticWorkload


def dynamic_grid(seed=0, nodes=8, spread=4.0):
    return (GridBuilder().heterogeneous(nodes=nodes, speed_spread=spread)
            .with_dynamic_load("randomwalk", mean_level=0.3).build(seed=seed))


class TestSyntheticFarmIntegration:
    def test_outputs_match_reference(self):
        workload = SyntheticWorkload(tasks=80, mean_cost=8.0, cost_cv=0.4, seed=2)
        result = Grasp(workload.farm(), dynamic_grid(seed=2)).run(workload.items())
        assert result.outputs == pytest.approx(workload.expected_outputs())

    def test_adaptive_vs_static_shape(self):
        """The paper's headline shape: the adaptive farm beats the static farm
        on a dynamic heterogeneous grid."""
        workload = SyntheticWorkload(tasks=100, mean_cost=10.0, cost_cv=0.3, seed=4)
        adaptive = Grasp(workload.farm(), dynamic_grid(seed=4)).run(workload.items())
        static = StaticFarm(workload.farm(), dynamic_grid(seed=4),
                            strategy="block").run(workload.items())
        assert adaptive.makespan < static.makespan
        assert sorted(map(float, static.outputs)) == pytest.approx(
            sorted(map(float, adaptive.outputs)))


class TestMatrixIntegration:
    def test_distributed_product_is_correct(self):
        workload = MatrixWorkload(size=48, blocks=8, seed=1)
        result = Grasp(workload.farm(), dynamic_grid(seed=1)).run(workload.items())
        assert workload.verify(result.outputs)

    def test_metrics_computable(self):
        workload = MatrixWorkload(size=32, blocks=6, seed=3)
        grid = dynamic_grid(seed=3)
        result = Grasp(workload.farm(), grid).run(workload.items())
        metrics = summarise_run(result, grid, label="matrix")
        assert metrics.speedup > 0
        assert metrics.tasks == 6


class TestMonteCarloIntegration:
    def test_pi_estimate_matches_sequential(self):
        workload = MonteCarloWorkload(batches=30, samples_per_batch=2000, seed=5)
        result = Grasp(workload.farm(), dynamic_grid(seed=5)).run(workload.items())
        parallel_estimate = workload.combine(result.outputs)
        assert parallel_estimate == pytest.approx(workload.expected_value())
        assert parallel_estimate == pytest.approx(math.pi, abs=0.1)


class TestParameterSweepIntegration:
    def test_sweep_outputs_in_point_order(self):
        sweep = ParameterSweep(axes={"x": [0.1 * i for i in range(12)],
                                     "resolution": [1, 2, 4]})
        result = Grasp(sweep.farm(), dynamic_grid(seed=6)).run(sweep.items())
        assert result.outputs == pytest.approx(sweep.expected_outputs())


class TestImagingPipelineIntegration:
    def test_pipeline_counts_match_sequential(self):
        workload = ImagingWorkload(images=24, image_side=16, seed=7)
        grid = dynamic_grid(seed=7, nodes=6)
        result = Grasp(workload.pipeline(), grid).run(workload.items())
        assert result.outputs == workload.expected_outputs()

    def test_adaptive_pipeline_not_slower_than_naive_static(self):
        workload = ImagingWorkload(images=32, image_side=16, seed=8)
        adaptive = Grasp(workload.pipeline(),
                         dynamic_grid(seed=8, nodes=6)).run(workload.items())
        static = StaticPipeline(workload.pipeline(), dynamic_grid(seed=8, nodes=6),
                                mapping="declaration").run(workload.items())
        assert adaptive.makespan <= static.makespan * 1.1


class TestMethodologyTrace:
    def test_figure1_phase_trace(self):
        """E1: the run's phase trace reproduces Figure 1's structure."""
        workload = SyntheticWorkload(tasks=60, mean_cost=6.0, seed=9)
        result = Grasp(workload.farm(), dynamic_grid(seed=9)).run(workload.items())
        result.phases.validate()
        sequence = result.phases.sequence()
        assert sequence[:4] == [Phase.PROGRAMMING, Phase.COMPILATION,
                                Phase.CALIBRATION, Phase.EXECUTION]
        # The trace records phase transitions for reconstruction.
        assert result.trace.filter("phase.calibration.start")
        assert result.trace.filter("phase.execution.start")
        # Recalibrations (if any) appear as extra calibration intervals.
        assert result.phases.recalibrations() == result.recalibrations
