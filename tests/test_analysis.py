"""Tests for the metrics, experiment harness and reporting."""

from __future__ import annotations

import pytest

from repro.analysis.experiments import (
    ComparisonResult,
    ExperimentTable,
    compare_farm,
    compare_pipeline,
    sweep,
)
from repro.analysis.metrics import (
    adaptation_overhead,
    efficiency,
    load_imbalance,
    makespan,
    speedup,
    summarise_run,
    throughput,
)
from repro.analysis.reporting import format_series, format_table, to_markdown
from repro.core.grasp import Grasp
from repro.exceptions import AnalysisError
from repro.grid.topology import GridBuilder
from repro.skeletons.pipeline import Pipeline, Stage
from repro.skeletons.taskfarm import TaskFarm


def make_grid(seed=0):
    return (GridBuilder().heterogeneous(nodes=6, speed_spread=4.0)
            .with_dynamic_load("randomwalk").build(seed=seed))


@pytest.fixture(scope="module")
def farm_run():
    grid = make_grid()
    farm = TaskFarm(worker=lambda x: x, cost_model=lambda item: 5.0)
    result = Grasp(farm, grid).run(range(60))
    return result, grid


class TestMetrics:
    def test_makespan_positive(self, farm_run):
        result, _ = farm_run
        assert makespan(result) > 0

    def test_speedup_bounds(self, farm_run):
        result, grid = farm_run
        s = speedup(result, grid)
        assert 0 < s <= len(grid)

    def test_efficiency_bounds(self, farm_run):
        result, grid = farm_run
        e = efficiency(result, grid)
        assert 0 < e <= 1.5  # small slack for estimate noise

    def test_throughput(self, farm_run):
        result, _ = farm_run
        assert throughput(result) == pytest.approx(len(result.results) / result.makespan)

    def test_load_imbalance_non_negative(self, farm_run):
        result, _ = farm_run
        assert load_imbalance(result) >= 0.0

    def test_adaptation_overhead_fraction(self, farm_run):
        result, _ = farm_run
        overhead = adaptation_overhead(result)
        assert 0.0 <= overhead < 1.0

    def test_summarise_run(self, farm_run):
        result, grid = farm_run
        metrics = summarise_run(result, grid, label="adaptive")
        assert metrics.label == "adaptive"
        assert metrics.tasks == 60
        assert metrics.makespan == pytest.approx(result.makespan)
        assert set(metrics.as_dict()) >= {"makespan", "speedup", "efficiency"}


class TestExperimentTable:
    def test_add_row_and_column(self):
        table = ExperimentTable(title="t", columns=["a", "b"])
        table.add_row({"a": 1, "b": 2, "ignored": 3})
        table.add_row({"a": 4})
        assert len(table) == 2
        assert table.column("a") == [1, 4]
        assert table.column("b") == [2, None]

    def test_unknown_column_rejected(self):
        table = ExperimentTable(title="t", columns=["a"])
        with pytest.raises(AnalysisError):
            table.column("zzz")


class TestSweep:
    def test_sweep_collects_rows_in_order(self):
        table = sweep("n", [1, 2, 3], lambda n: {"square": n * n}, title="squares")
        assert table.column("n") == [1, 2, 3]
        assert table.column("square") == [1, 4, 9]

    def test_sweep_empty_axis_rejected(self):
        with pytest.raises(AnalysisError):
            sweep("n", [], lambda n: {})


class TestComparisons:
    def test_compare_farm_produces_all_strategies(self):
        comparison = compare_farm(
            skeleton_factory=lambda: TaskFarm(worker=lambda x: x,
                                              cost_model=lambda item: 5.0),
            inputs_factory=lambda: range(40),
            grid_factory=lambda: make_grid(seed=2),
            baselines=("static-block", "demand-driven"),
        )
        assert isinstance(comparison, ComparisonResult)
        assert set(comparison.baselines) == {"static-block", "demand-driven"}
        assert comparison.adaptive.makespan > 0
        assert comparison.improvement_over("static-block") > 0
        assert len(comparison.rows()) == 3

    def test_adaptive_beats_static_block_on_dynamic_grid(self):
        comparison = compare_farm(
            skeleton_factory=lambda: TaskFarm(worker=lambda x: x,
                                              cost_model=lambda item: 5.0),
            inputs_factory=lambda: range(60),
            grid_factory=lambda: make_grid(seed=7),
            baselines=("static-block",),
        )
        assert comparison.improvement_over("static-block") > 1.0

    def test_unknown_baseline_rejected(self):
        with pytest.raises(AnalysisError):
            compare_farm(
                skeleton_factory=lambda: TaskFarm(worker=lambda x: x),
                inputs_factory=lambda: range(10),
                grid_factory=lambda: make_grid(),
                baselines=("quantum",),
            )

    def test_compare_pipeline(self):
        def pipeline_factory():
            return Pipeline([
                Stage(lambda x: x + 1, cost_model=lambda i: 1.0),
                Stage(lambda x: x * 2, cost_model=lambda i: 4.0),
                Stage(lambda x: x - 3, cost_model=lambda i: 1.0),
            ])

        comparison = compare_pipeline(
            pipeline_factory=pipeline_factory,
            inputs_factory=lambda: range(40),
            grid_factory=lambda: make_grid(seed=3),
            baselines=("declaration",),
        )
        assert "declaration" in comparison.baselines
        assert comparison.improvement_over("declaration") > 0


class TestReporting:
    def test_format_table_contains_rows(self):
        table = ExperimentTable(title="demo", columns=["x", "y"])
        table.add_row({"x": 1, "y": 1.23456})
        text = format_table(table, precision=2)
        assert "demo" in text
        assert "1.23" in text

    def test_format_empty_table(self):
        table = ExperimentTable(title="empty", columns=["x"])
        assert "(no rows)" in format_table(table)

    def test_format_series(self):
        text = format_series([1, 2], [10.0, 20.0], x_label="n", y_label="v", title="s")
        assert "n" in text and "v" in text and "20.000" in text

    def test_format_series_mismatched_lengths(self):
        with pytest.raises(AnalysisError):
            format_series([1], [1, 2])

    def test_to_markdown(self):
        table = ExperimentTable(title="demo", columns=["x"])
        table.add_row({"x": None})
        md = to_markdown(table)
        assert md.startswith("| x |")
        assert "| - |" in md
