"""Tests for the extension skeletons: map, reduce, divide-and-conquer, composition."""

from __future__ import annotations

import operator

import pytest

from repro.exceptions import SkeletonError
from repro.skeletons.composition import FarmOfPipelines, PipelineOfFarms
from repro.skeletons.divide_conquer import DivideAndConquer
from repro.skeletons.map import MapSkeleton
from repro.skeletons.pipeline import Pipeline, Stage
from repro.skeletons.reduce import ReduceSkeleton
from repro.skeletons.taskfarm import TaskFarm


class TestMapSkeleton:
    def test_partition_even(self):
        sk = MapSkeleton(fn=lambda b: b, blocks=2)
        blocks = sk.partition(list(range(10)))
        assert len(blocks) == 2
        assert sum(len(b) for b in blocks) == 10

    def test_partition_more_blocks_than_items(self):
        sk = MapSkeleton(fn=lambda b: b, blocks=10)
        blocks = sk.partition([1, 2, 3])
        assert sum(len(b) for b in blocks) == 3
        assert all(blocks)

    def test_partition_empty_rejected(self):
        with pytest.raises(SkeletonError):
            MapSkeleton(fn=lambda b: b).partition([])

    def test_make_tasks_default_cost_is_block_length(self):
        sk = MapSkeleton(fn=lambda b: b, blocks=2)
        tasks = sk.make_tasks(range(10))
        assert [t.cost for t in tasks] == [5.0, 5.0]

    def test_execute_task_and_sequential_agree(self):
        sk = MapSkeleton(fn=lambda block: [x * 10 for x in block], blocks=3)
        tasks = sk.make_tasks(range(7))
        outputs = [sk.execute_task(t) for t in tasks]
        assert sk.combine(outputs) == sk.run_sequential(range(7))
        assert sk.run_sequential(range(7)) == [x * 10 for x in range(7)]

    def test_custom_combine(self):
        sk = MapSkeleton(fn=lambda block: sum(block), combine=lambda rs: sum(rs), blocks=4)
        assert sk.run_sequential(range(10)) == 45

    def test_properties(self):
        props = MapSkeleton(fn=lambda b: b).properties
        assert props.name == "map"
        assert props.ordered_output

    def test_invalid_construction(self):
        with pytest.raises(SkeletonError):
            MapSkeleton(fn="nope")
        with pytest.raises(SkeletonError):
            MapSkeleton(fn=lambda b: b, blocks=-1)


class TestReduceSkeleton:
    def test_run_sequential_matches_builtin(self):
        sk = ReduceSkeleton(op=operator.add, identity=0, blocks=4)
        assert sk.run_sequential(range(100)) == sum(range(100))

    def test_parallel_blocks_then_combine(self):
        sk = ReduceSkeleton(op=operator.add, identity=0, blocks=4)
        tasks = sk.make_tasks(range(100))
        partials = [sk.execute_task(t) for t in tasks]
        assert sk.combine_partials(partials) == sum(range(100))

    def test_non_commutative_associative_op_preserved(self):
        # String concatenation is associative but not commutative.
        sk = ReduceSkeleton(op=operator.add, identity="", blocks=3)
        letters = list("abcdefghij")
        tasks = sk.make_tasks(letters)
        partials = [sk.execute_task(t) for t in tasks]
        assert sk.combine_partials(partials) == "abcdefghij"

    def test_empty_without_identity_rejected(self):
        sk = ReduceSkeleton(op=operator.add)
        with pytest.raises(SkeletonError):
            sk.run_sequential([])
        with pytest.raises(SkeletonError):
            sk.make_tasks([])

    def test_empty_with_identity(self):
        sk = ReduceSkeleton(op=operator.add, identity=0)
        assert sk.run_sequential([]) == 0
        assert sk.combine_partials([]) == 0

    def test_cost_per_element(self):
        sk = ReduceSkeleton(op=operator.add, identity=0, blocks=2, cost_per_element=0.5)
        tasks = sk.make_tasks(range(8))
        assert sum(t.cost for t in tasks) == pytest.approx(4.0)

    def test_invalid_construction(self):
        with pytest.raises(SkeletonError):
            ReduceSkeleton(op="nope")
        with pytest.raises(SkeletonError):
            ReduceSkeleton(op=operator.add, cost_per_element=-1)


class TestDivideAndConquer:
    @pytest.fixture
    def summing_dc(self) -> DivideAndConquer:
        return DivideAndConquer(
            divide=lambda xs: [xs[:len(xs) // 2], xs[len(xs) // 2:]],
            combine=lambda _p, subs: subs[0] + subs[1],
            solve=lambda xs: sum(xs),
            is_trivial=lambda xs: len(xs) <= 4,
            parallel_depth=2,
        )

    def test_run_sequential(self, summing_dc):
        assert summing_dc.run_sequential([list(range(20))]) == [sum(range(20))]

    def test_unroll_and_recombine(self, summing_dc):
        leaves, plan = summing_dc.unroll(list(range(32)))
        assert len(leaves) == 4  # depth 2 halving
        solutions = [sum(leaf) for leaf in leaves]
        assert summing_dc.recombine(plan, solutions) == sum(range(32))

    def test_unroll_respects_triviality(self, summing_dc):
        leaves, plan = summing_dc.unroll([1, 2, 3])
        assert leaves == [[1, 2, 3]]
        assert plan == 0

    def test_task_roundtrip_matches_sequential(self, summing_dc):
        problems = [list(range(16)), list(range(5)), list(range(100))]
        tasks = summing_dc.make_tasks(problems)
        solutions = [summing_dc.execute_task(t) for t in tasks]
        assert summing_dc.recombine_all(solutions) == [sum(p) for p in problems]

    def test_recombine_all_requires_make_tasks(self, summing_dc):
        with pytest.raises(SkeletonError):
            summing_dc.recombine_all([1, 2])

    def test_empty_problem_list_rejected(self, summing_dc):
        with pytest.raises(SkeletonError):
            summing_dc.make_tasks([])

    def test_divide_returning_nothing_rejected(self):
        bad = DivideAndConquer(
            divide=lambda xs: [],
            combine=lambda _p, subs: subs,
            solve=lambda xs: xs,
            is_trivial=lambda xs: False,
            parallel_depth=1,
        )
        with pytest.raises(SkeletonError):
            bad.unroll([1, 2, 3])

    def test_invalid_construction(self):
        with pytest.raises(SkeletonError):
            DivideAndConquer(divide="x", combine=lambda p, s: s,
                             solve=lambda p: p, is_trivial=lambda p: True)
        with pytest.raises(SkeletonError):
            DivideAndConquer(divide=lambda p: [p], combine=lambda p, s: s,
                             solve=lambda p: p, is_trivial=lambda p: True,
                             parallel_depth=-1)


class TestComposition:
    def test_pipeline_of_farms_lowers_to_replicated_chain(self):
        from repro.core.plan import ChainPlan

        composed = PipelineOfFarms([Stage(lambda x: x + 1), Stage(lambda x: x * 2)])
        lowered = composed.lower()
        assert isinstance(lowered, ChainPlan)
        assert all(stage.replicable for stage in lowered.stages)
        assert lowered.replicate is True  # farmed stages without config
        assert lowered.run_unit(1) == (1 + 1) * 2
        assert composed.run_sequential([1, 2]) == [(1 + 1) * 2, (2 + 1) * 2]
        # The collapsed primitive form stays reachable.
        assert isinstance(composed.pipeline, Pipeline)

    def test_pipeline_of_farms_properties(self):
        composed = PipelineOfFarms([Stage(lambda x: x)])
        assert composed.properties.redistributable
        assert composed.properties.name == "pipeline_of_farms"

    def test_farm_of_pipelines_lowers_to_nested_fan(self):
        from repro.core.plan import ChainPlan, FanPlan

        composed = FarmOfPipelines([Stage(lambda x: x + 1), Stage(lambda x: x * 3)])
        lowered = composed.lower()
        assert isinstance(lowered, FanPlan)
        assert lowered.nested
        assert isinstance(lowered.body, ChainPlan)
        assert lowered.body.run_unit(2) == (2 + 1) * 3
        assert composed.run_sequential([0, 1]) == [3, 6]
        # The collapsed primitive form stays reachable (and picklable).
        assert isinstance(composed.farm, TaskFarm)
        assert composed.farm.worker(2) == (2 + 1) * 3

    def test_farm_of_pipelines_cost_is_sum_of_stage_costs(self):
        composed = FarmOfPipelines([
            Stage(lambda x: x, cost_model=lambda i: 2.0),
            Stage(lambda x: x, cost_model=lambda i: 3.0),
        ])
        tasks = composed.make_tasks([1])
        assert tasks[0].cost == pytest.approx(5.0)

    def test_empty_compositions_rejected(self):
        with pytest.raises(SkeletonError):
            PipelineOfFarms([])
        with pytest.raises(SkeletonError):
            FarmOfPipelines([])
