"""Tests for the experiment workloads."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.exceptions import WorkloadError
from repro.workloads.imaging import ImagingWorkload, make_imaging_pipeline
from repro.workloads.matrix import MatrixWorkload
from repro.workloads.montecarlo import MonteCarloWorkload, estimate_pi
from repro.workloads.parameter_sweep import ParameterSweep, default_objective, sweep_grid
from repro.workloads.synthetic import SyntheticSpec, SyntheticWorkload, spin_worker


class TestSyntheticWorkload:
    def test_items_deterministic(self):
        a = SyntheticWorkload(tasks=20, seed=3).items()
        b = SyntheticWorkload(tasks=20, seed=3).items()
        assert [i.cost for i in a] == [i.cost for i in b]
        assert [i.value for i in a] == [i.value for i in b]

    def test_mean_cost_close_to_spec(self):
        workload = SyntheticWorkload(tasks=500, mean_cost=10.0, cost_cv=0.3, seed=1)
        costs = [i.cost for i in workload.items()]
        assert np.mean(costs) == pytest.approx(10.0, rel=0.1)

    def test_zero_cv_gives_identical_costs(self):
        workload = SyntheticWorkload(tasks=10, mean_cost=5.0, cost_cv=0.0)
        assert all(i.cost == 5.0 for i in workload.items())

    @pytest.mark.parametrize("distribution", ["uniform", "normal", "lognormal"])
    def test_distributions_produce_positive_costs(self, distribution):
        workload = SyntheticWorkload(tasks=200, distribution=distribution,
                                     cost_cv=0.5, seed=2)
        assert all(i.cost > 0 for i in workload.items())

    def test_comp_comm_ratio_scales_bytes(self):
        compute_bound = SyntheticWorkload(tasks=10, comp_comm_ratio=100.0, seed=0)
        comm_bound = SyntheticWorkload(tasks=10, comp_comm_ratio=0.1, seed=0)
        assert (np.mean([i.nbytes for i in comm_bound.items()])
                > np.mean([i.nbytes for i in compute_bound.items()]))

    def test_farm_tasks_use_declared_sizes(self):
        workload = SyntheticWorkload(tasks=5, comp_comm_ratio=1.0, seed=0)
        farm = workload.farm()
        tasks = farm.make_tasks(workload.items())
        items = workload.items()
        assert [t.input_bytes for t in tasks] == [i.nbytes for i in items]
        assert [t.cost for t in tasks] == [i.cost for i in items]

    def test_expected_outputs_match_worker(self):
        workload = SyntheticWorkload(tasks=5, seed=0)
        outputs = workload.expected_outputs()
        assert outputs == [spin_worker(i) for i in workload.items()]

    def test_describe(self):
        info = SyntheticWorkload(tasks=15, seed=0).describe()
        assert info["tasks"] == 15
        assert info["total_cost"] > 0

    def test_invalid_spec(self):
        with pytest.raises(WorkloadError):
            SyntheticSpec(tasks=0)
        with pytest.raises(WorkloadError):
            SyntheticSpec(distribution="exotic")
        with pytest.raises(WorkloadError):
            SyntheticSpec(comp_comm_ratio=0.0)
        with pytest.raises(WorkloadError):
            SyntheticWorkload(SyntheticSpec(), tasks=5)


class TestMatrixWorkload:
    def test_block_results_assemble_to_reference(self):
        workload = MatrixWorkload(size=32, blocks=4, seed=1)
        outputs = [item.a_block @ item.b for item in workload.items()]
        assert workload.verify(outputs)

    def test_farm_costs_follow_flops(self):
        workload = MatrixWorkload(size=32, blocks=4, seed=1)
        farm = workload.farm()
        tasks = farm.make_tasks(workload.items())
        expected = 2.0 * 8 * 32 * 32 / workload.flops_per_work_unit
        assert tasks[0].cost == pytest.approx(expected)

    def test_item_count(self):
        assert len(MatrixWorkload(size=30, blocks=7).items()) == 7

    def test_describe(self):
        info = MatrixWorkload(size=16, blocks=2).describe()
        assert info["total_flops"] == pytest.approx(2 * 16 ** 3)

    def test_invalid_parameters(self):
        with pytest.raises(WorkloadError):
            MatrixWorkload(size=4, blocks=8)
        with pytest.raises(WorkloadError):
            MatrixWorkload(size=0)
        with pytest.raises(WorkloadError):
            MatrixWorkload(flops_per_work_unit=0)

    def test_assemble_empty_rejected(self):
        with pytest.raises(WorkloadError):
            MatrixWorkload(size=8, blocks=2).assemble([])


class TestImagingWorkload:
    def test_pipeline_has_four_stages(self):
        pipe = make_imaging_pipeline(image_side=16)
        assert pipe.num_stages == 4
        assert [s.name for s in pipe.stages] == ["denoise", "convolve", "threshold", "count"]

    def test_convolve_is_heaviest_stage(self):
        pipe = make_imaging_pipeline(image_side=16)
        costs = [pipe.stage_cost(i, None) for i in range(4)]
        assert costs[1] == max(costs)

    def test_pipeline_output_is_pixel_count(self):
        workload = ImagingWorkload(images=3, image_side=16, seed=0)
        outputs = workload.expected_outputs()
        assert len(outputs) == 3
        assert all(isinstance(v, int) for v in outputs)
        assert all(0 <= v <= 16 * 16 for v in outputs)

    def test_items_deterministic(self):
        a = ImagingWorkload(images=2, image_side=8, seed=5).items()
        b = ImagingWorkload(images=2, image_side=8, seed=5).items()
        assert np.allclose(a[0], b[0])

    def test_invalid_parameters(self):
        with pytest.raises(WorkloadError):
            ImagingWorkload(images=0)
        with pytest.raises(WorkloadError):
            make_imaging_pipeline(image_side=2)

    def test_describe(self):
        info = ImagingWorkload(images=4, image_side=8).describe()
        assert info["images"] == 4
        assert len(info["stage_weights"]) == 4


class TestMonteCarloWorkload:
    def test_estimate_converges_to_pi(self):
        workload = MonteCarloWorkload(batches=40, samples_per_batch=5000, seed=1)
        assert workload.expected_value() == pytest.approx(math.pi, abs=0.05)

    def test_batches_are_deterministic(self):
        w = MonteCarloWorkload(batches=3, samples_per_batch=100, seed=2)
        assert estimate_pi(w.items()[0]) == estimate_pi(w.items()[0])

    def test_batches_differ_from_each_other(self):
        w = MonteCarloWorkload(batches=2, samples_per_batch=500, seed=2)
        items = w.items()
        assert estimate_pi(items[0]) != estimate_pi(items[1])

    def test_farm_cost_model(self):
        w = MonteCarloWorkload(batches=2, samples_per_batch=10_000,
                               samples_per_work_unit=5000)
        tasks = w.farm().make_tasks(w.items())
        assert all(t.cost == pytest.approx(2.0) for t in tasks)

    def test_combine_empty_rejected(self):
        with pytest.raises(WorkloadError):
            MonteCarloWorkload().combine([])

    def test_invalid_parameters(self):
        with pytest.raises(WorkloadError):
            MonteCarloWorkload(batches=0)
        with pytest.raises(WorkloadError):
            MonteCarloWorkload(samples_per_work_unit=0)


class TestParameterSweep:
    def test_sweep_grid_cartesian_product(self):
        points = sweep_grid({"a": [1, 2, 3], "b": ["x", "y"]})
        assert len(points) == 6
        assert {"a": 3, "b": "y"} in points

    def test_sweep_grid_empty_axis_rejected(self):
        with pytest.raises(WorkloadError):
            sweep_grid({"a": []})
        with pytest.raises(WorkloadError):
            sweep_grid({})

    def test_default_cost_scales_with_resolution(self):
        sweep = ParameterSweep(axes={"resolution": [1, 4], "x": [0.0]}, base_cost=2.0)
        costs = {p["resolution"]: sweep.cost_fn(p) for p in sweep.items()}
        assert costs[4] > costs[1]

    def test_expected_outputs_match_objective(self):
        sweep = ParameterSweep(axes={"x": [0.0, 1.0], "y": [2.0]})
        assert sweep.expected_outputs() == [default_objective(p) for p in sweep.items()]

    def test_farm_preserves_point_order(self):
        sweep = ParameterSweep(axes={"x": [1, 2, 3]})
        tasks = sweep.farm().make_tasks(sweep.items())
        assert [t.payload["x"] for t in tasks] == [1, 2, 3]

    def test_describe_and_total_cost(self):
        sweep = ParameterSweep(axes={"x": [1, 2]}, base_cost=3.0)
        assert sweep.total_cost() == pytest.approx(6.0)
        assert sweep.describe()["points"] == 2

    def test_invalid_base_cost(self):
        with pytest.raises(WorkloadError):
            ParameterSweep(axes={"x": [1]}, base_cost=0.0)


class TestIOBoundWorkload:
    def test_items_deterministic(self):
        from repro.workloads.synthetic import IOBoundWorkload

        a = IOBoundWorkload(requests=32, mean_latency=0.01, seed=4).items()
        b = IOBoundWorkload(requests=32, mean_latency=0.01, seed=4).items()
        assert a == b
        assert len(a) == 32
        assert all(item.latency > 0 for item in a)
        # Latencies are clipped into a sane band around the mean.
        assert all(0.001 <= item.latency <= 0.1 for item in a)

    def test_zero_cv_gives_uniform_latencies(self):
        from repro.workloads.synthetic import IOBoundWorkload

        items = IOBoundWorkload(requests=8, mean_latency=0.02,
                                latency_cv=0.0).items()
        assert all(item.latency == pytest.approx(0.02) for item in items)

    def test_spec_validation(self):
        from repro.workloads.synthetic import IOBoundSpec

        with pytest.raises(WorkloadError):
            IOBoundSpec(requests=0)
        with pytest.raises(WorkloadError):
            IOBoundSpec(mean_latency=0.0)
        with pytest.raises(WorkloadError):
            IOBoundSpec(latency_cv=-0.1)
        with pytest.raises(WorkloadError):
            IOBoundSpec(response_bytes=0)

    def test_expected_outputs_match_workers(self):
        import asyncio

        from repro.workloads.synthetic import (
            IOBoundWorkload,
            blocking_fetch_worker,
            fetch_worker,
        )

        wl = IOBoundWorkload(requests=6, mean_latency=0.001, seed=1)
        expected = wl.expected_outputs()
        assert [blocking_fetch_worker(i) for i in wl.items()] == expected
        assert [asyncio.run(fetch_worker(i)) for i in wl.items()] == expected
        assert wl.total_latency() == pytest.approx(
            sum(i.latency for i in wl.items()))

    def test_farm_is_fully_picklable(self):
        # The I/O farm explicitly supports the process backend, so the
        # worker AND every cost/size model must pickle (a lambda in any of
        # them only surfaces as a worker-side crash at dispatch time).
        import pickle

        from repro.workloads.synthetic import IOBoundWorkload

        farm = IOBoundWorkload(requests=4, mean_latency=0.001).farm()
        for attr in ("worker", "cost_model", "input_size_model",
                     "output_size_model"):
            pickle.dumps(getattr(farm, attr))

    def test_run_sequential_baseline(self):
        from repro.workloads.synthetic import IOBoundWorkload

        wl = IOBoundWorkload(requests=5, mean_latency=0.002, seed=2)
        outputs, elapsed = wl.run_sequential()
        assert outputs == wl.expected_outputs()
        assert elapsed >= wl.total_latency() * 0.5

    def test_describe(self):
        from repro.workloads.synthetic import IOBoundWorkload

        info = IOBoundWorkload(requests=16, mean_latency=0.01).describe()
        assert info["requests"] == 16
        assert info["total_latency"] > 0
