"""The streaming result API: ``as_completed()`` at every layer.

``Grasp.run`` is now the draining form of ``Grasp.as_completed``; these
tests pin the streaming contract:

* streaming and blocking runs are *the same run* — bit-identical reports
  on the simulated backend, identical outputs everywhere;
* every completed task (calibration samples, window results,
  recalibration-probe results) is yielded exactly once, in collection
  order;
* the stream is lazy — abandoning it stops dispatching and releases
  internally created backends;
* the executor-level generators return the final ``ExecutionReport`` and
  the ``Skeleton.as_completed`` front door round-trips through ``Grasp``.
"""

from __future__ import annotations

import threading

import pytest

from repro import (
    Grasp,
    GraspConfig,
    Pipeline,
    Stage,
    StreamingRun,
    TaskFarm,
)
from repro.grid.load import ConstantLoad, StepLoad
from repro.grid.node import GridNode
from repro.grid.topology import GridBuilder, GridTopology


def hetero_grid() -> GridTopology:
    return (GridBuilder().heterogeneous(nodes=8, speed_spread=4.0)
            .named("hetero").build(seed=1))


def spike_grid() -> GridTopology:
    nodes = [
        GridNode(node_id=f"s/n{i}", speed=speed,
                 load_model=ConstantLoad(0.0), site="s")
        for i, speed in enumerate([1.0, 1.5, 2.0, 3.0, 4.0, 6.0])
    ]
    nodes[-1] = nodes[-1].with_load(StepLoad(steps=[(5.0, 0.9)], initial=0.0))
    nodes[-2] = nodes[-2].with_load(StepLoad(steps=[(5.0, 0.9)], initial=0.0))
    return GridTopology(nodes=nodes, name="spike")


def square_farm() -> TaskFarm:
    return TaskFarm(worker=lambda x: x * x, cost_model=lambda _: 3.0)


class TestGraspStreaming:
    def test_stream_is_bit_identical_to_run(self):
        blocking = Grasp(skeleton=square_farm(), grid=hetero_grid(),
                         config=GraspConfig.adaptive()).run(inputs=range(40))
        run = Grasp(skeleton=square_farm(), grid=hetero_grid(),
                    config=GraspConfig.adaptive()).as_completed(inputs=range(40))
        streamed = list(run)
        assert isinstance(run, StreamingRun)
        assert run.result is not None
        assert run.result.makespan == blocking.makespan
        assert run.result.outputs == blocking.outputs
        # Streamed results are exactly the run's results, in the same
        # collection order (calibration first, then execution).
        assert [(r.task_id, r.node_id, r.finished) for r in streamed] == \
            [(r.task_id, r.node_id, r.finished) for r in blocking.results]

    def test_result_is_none_until_exhausted(self):
        run = Grasp(skeleton=square_farm(),
                    grid=hetero_grid()).as_completed(inputs=range(12))
        first = next(run)
        assert first.during_calibration
        assert run.result is None
        remaining = list(run)
        assert run.result is not None
        assert len([first] + remaining) == 12

    def test_recalibration_results_are_streamed(self):
        # threshold 0.3 on the spike grid forces repeated recalibrations
        # whose consumed probe tasks must stream like any other result.
        farm = TaskFarm(worker=lambda x: x + 7, cost_model=lambda _: 5.0)
        run = Grasp(skeleton=farm, grid=spike_grid(),
                    config=GraspConfig.adaptive(threshold_factor=0.3),
                    ).as_completed(inputs=range(60))
        streamed = list(run)
        assert run.result.recalibrations > 0
        assert sorted(r.task_id for r in streamed) == list(range(60))
        assert any(r.during_calibration for r in streamed)

    def test_pipeline_stream(self):
        pipeline = Pipeline(stages=[
            Stage(fn=lambda x: x + 1, cost_model=lambda _: 2.0),
            Stage(fn=lambda x: x * 3, cost_model=lambda _: 4.0),
            Stage(fn=lambda x: x - 5, cost_model=lambda _: 1.0),
        ])
        run = Grasp(skeleton=pipeline, grid=hetero_grid(),
                    config=GraspConfig.adaptive()).as_completed(inputs=range(30))
        streamed = list(run)
        assert run.result.outputs == [(x + 1) * 3 - 5 for x in range(30)]
        assert sorted(r.task_id for r in streamed) == list(range(30))

    @pytest.mark.parametrize("backend", ["thread", "asyncio"])
    def test_stream_on_concurrent_backends(self, backend):
        run = Grasp(skeleton=TaskFarm(worker=lambda x: x * 2),
                    grid=hetero_grid(),
                    backend=backend).as_completed(inputs=range(32))
        streamed = list(run)
        assert sorted(r.output for r in streamed) == \
            [x * 2 for x in range(32)]
        assert run.result.outputs == [x * 2 for x in range(32)]

    def test_abandoned_stream_releases_owned_backend(self):
        run = Grasp(skeleton=TaskFarm(worker=lambda x: x), grid=hetero_grid(),
                    backend="thread").as_completed(inputs=range(40))
        next(run)
        run.close()
        leaked = [t for t in threading.enumerate()
                  if t.name.startswith("grasp-") and t.is_alive()]
        assert leaked == []

    def test_misconfiguration_raises_at_call_site(self):
        # Compilation runs eagerly: a bogus backend or missing master must
        # raise from as_completed() itself, not from the first next().
        from repro.exceptions import CompilationError

        with pytest.raises(CompilationError, match="unknown backend"):
            Grasp(skeleton=square_farm(), grid=hetero_grid(),
                  backend="bogus").as_completed(inputs=range(4))

        config = GraspConfig()
        config.master_node = "ghost"
        with pytest.raises(CompilationError, match="does not exist"):
            Grasp(skeleton=square_farm(), grid=hetero_grid(),
                  config=config).as_completed(inputs=range(4))

    def test_never_iterated_stream_close_releases_backend(self):
        # Closing an unstarted generator skips its finally blocks; the
        # StreamingRun must still release the eagerly-created backend.
        # The asyncio backend starts its loop thread in __init__, so a
        # leak here is observable without ever iterating.
        run = Grasp(skeleton=square_farm(), grid=hetero_grid(),
                    backend="asyncio").as_completed(inputs=range(8))
        leaked = [t for t in threading.enumerate()
                  if t.name.startswith("grasp-") and t.is_alive()]
        assert leaked, "compilation should have started the loop thread"
        run.close()
        leaked = [t for t in threading.enumerate()
                  if t.name.startswith("grasp-") and t.is_alive()]
        assert leaked == []

    def test_dropped_never_iterated_stream_is_finalized(self):
        # Dropping the run without next() or close() GCs a never-started
        # generator whose finally blocks never run; the finalizer must
        # close the eagerly-created backend anyway.
        import gc

        run = Grasp(skeleton=square_farm(), grid=hetero_grid(),
                    backend="asyncio").as_completed(inputs=range(8))
        del run
        gc.collect()
        leaked = [t for t in threading.enumerate()
                  if t.name.startswith("grasp-") and t.is_alive()]
        assert leaked == []

    def test_abandoned_stream_stops_dispatching(self):
        dispatched = []

        def worker(x):
            dispatched.append(x)
            return x

        run = Grasp(skeleton=TaskFarm(worker=worker),
                    grid=hetero_grid()).as_completed(inputs=range(64))
        next(run)
        count_at_abandon = len(dispatched)
        run.close()
        assert len(dispatched) == count_at_abandon < 64


class TestSkeletonFrontDoor:
    def test_skeleton_as_completed(self):
        grid = hetero_grid()
        farm = TaskFarm(worker=lambda x: x * 5)
        run = farm.as_completed(grid, inputs=range(16))
        outputs = sorted(r.output for r in run)
        assert outputs == [x * 5 for x in range(16)]
        assert run.result.total_tasks == 16

    def test_skeleton_as_completed_passes_config_and_backend(self):
        grid = hetero_grid()
        config = GraspConfig.non_adaptive()
        config.execution.master_computes = True
        run = TaskFarm(worker=lambda x: -x).as_completed(
            grid, inputs=range(8), config=config, backend="thread")
        assert sorted(r.output for r in run) == [-x for x in range(7, -1, -1)]
        assert run.result.config is config


class TestExecutorStreams:
    def test_farm_executor_as_completed_returns_report(self):
        import collections

        from repro.core.calibration import calibrate
        from repro.core.compilation import compile_program
        from repro.core.farm_executor import FarmExecutor
        from repro.core.program import SkeletalProgram

        config = GraspConfig.adaptive()
        program = SkeletalProgram(square_farm(), config)
        tasks = collections.deque(program.make_tasks(range(20)))
        compiled = compile_program(program, hetero_grid())
        calibration = calibrate(
            tasks=tasks, pool=compiled.pool, execute_fn=program.execute_task,
            config=config.calibration, master_node=compiled.master_node,
            min_nodes=program.min_nodes, at_time=0.0, consume=True,
            backend=compiled.backend,
        )
        executor = FarmExecutor(
            execute_fn=program.execute_task, simulator=compiled.backend,
            config=config, master_node=compiled.master_node,
            pool=compiled.pool,
        )
        stream = executor.as_completed(tasks, calibration)
        yielded = []
        report = None
        while True:
            try:
                yielded.append(next(stream))
            except StopIteration as stop:
                report = stop.value
                break
        assert report is executor.engine.report
        assert [r.task_id for r in yielded] == \
            [r.task_id for r in report.results]
