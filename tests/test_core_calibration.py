"""Tests for the calibration phase (Algorithm 1)."""

from __future__ import annotations

import collections

import pytest

from repro.core.calibration import calibrate, select_fittest
from repro.core.parameters import CalibrationConfig, SelectionPolicy
from repro.core.ranking import NodeScore, RankingMode
from repro.exceptions import CalibrationError
from repro.grid.failures import PermanentFailure
from repro.grid.simulator import GridSimulator
from repro.grid.topology import GridBuilder
from repro.monitor.monitor import ResourceMonitor
from repro.skeletons.taskfarm import TaskFarm
from repro.utils.tracing import Tracer


def make_env(nodes=6, spread=4.0, seed=0, load=None):
    builder = GridBuilder().heterogeneous(nodes=nodes, speed_spread=spread)
    if load:
        builder = builder.with_dynamic_load(load)
    grid = builder.build(seed=seed)
    sim = GridSimulator(grid)
    return grid, sim


def make_tasks(farm: TaskFarm, n: int):
    return collections.deque(farm.make_tasks(range(n)))


class TestSelectFittest:
    def scores(self, values):
        return [NodeScore(node_id=f"n{i}", score=v, mean_time=v, mean_load=0.0,
                          mean_bandwidth=0.0, observations=1)
                for i, v in enumerate(values)]

    def test_count_policy(self):
        config = CalibrationConfig(selection=SelectionPolicy.COUNT, select_count=2)
        chosen = select_fittest(self.scores([3.0, 1.0, 2.0]), config, min_nodes=1)
        assert chosen == ["n1", "n2"]

    def test_fraction_policy(self):
        config = CalibrationConfig(selection=SelectionPolicy.FRACTION, select_fraction=0.5)
        chosen = select_fittest(self.scores([1.0, 2.0, 3.0, 4.0]), config, min_nodes=1)
        assert chosen == ["n0", "n1"]

    def test_cutoff_policy(self):
        config = CalibrationConfig(selection=SelectionPolicy.CUTOFF, cutoff_ratio=2.0)
        chosen = select_fittest(self.scores([1.0, 1.5, 2.5, 10.0]), config, min_nodes=1)
        assert chosen == ["n0", "n1"]

    def test_min_nodes_floor(self):
        config = CalibrationConfig(selection=SelectionPolicy.CUTOFF, cutoff_ratio=1.01)
        chosen = select_fittest(self.scores([1.0, 5.0, 9.0]), config, min_nodes=3)
        assert len(chosen) == 3

    def test_floor_capped_at_pool_size(self):
        config = CalibrationConfig(selection=SelectionPolicy.COUNT, select_count=10)
        chosen = select_fittest(self.scores([1.0, 2.0]), config, min_nodes=10)
        assert len(chosen) == 2

    def test_empty_scores_rejected(self):
        with pytest.raises(CalibrationError):
            select_fittest([], CalibrationConfig(), min_nodes=1)


class TestCalibrate:
    def test_basic_calibration_selects_and_consumes(self):
        grid, sim = make_env()
        farm = TaskFarm(worker=lambda x: x * x)
        tasks = make_tasks(farm, 50)
        report = calibrate(
            tasks=tasks, pool=grid.node_ids, execute_fn=farm.execute_task,
            simulator=sim, config=CalibrationConfig(), master_node=grid.node_ids[0],
            min_nodes=2, at_time=0.0,
        )
        # One sample per node was consumed from the queue.
        assert report.consumed_tasks == len(grid.node_ids)
        assert len(tasks) == 50 - len(grid.node_ids)
        assert len(report.results) == report.consumed_tasks
        assert report.finished > report.started
        assert report.duration > 0

    def test_sample_results_are_real_outputs(self):
        grid, sim = make_env()
        farm = TaskFarm(worker=lambda x: x * x)
        tasks = make_tasks(farm, 20)
        report = calibrate(tasks, grid.node_ids, farm.execute_task, sim,
                           CalibrationConfig(), grid.node_ids[0], at_time=0.0)
        for result in report.results:
            assert result.output == result.task_id ** 2
            assert result.during_calibration

    def test_ranking_matches_heterogeneity(self):
        grid, sim = make_env(nodes=6, spread=8.0)
        farm = TaskFarm(worker=lambda x: x)
        tasks = make_tasks(farm, 30)
        report = calibrate(tasks, grid.node_ids, farm.execute_task, sim,
                           CalibrationConfig(), grid.node_ids[0], at_time=0.0)
        # The fittest node must be the nominally fastest one on a dedicated grid.
        speeds = grid.speeds()
        fastest = max(speeds, key=speeds.get)
        assert report.chosen[0] == fastest
        assert report.scores[0].node_id == fastest

    def test_cutoff_drops_very_slow_nodes(self):
        grid, sim = make_env(nodes=8, spread=16.0)
        farm = TaskFarm(worker=lambda x: x)
        tasks = make_tasks(farm, 40)
        config = CalibrationConfig(selection=SelectionPolicy.CUTOFF, cutoff_ratio=2.0)
        report = calibrate(tasks, grid.node_ids, farm.execute_task, sim,
                           config, grid.node_ids[0], min_nodes=1, at_time=0.0)
        assert len(report.chosen) < len(grid.node_ids)

    def test_probe_mode_does_not_consume(self):
        grid, sim = make_env()
        farm = TaskFarm(worker=lambda x: x)
        tasks = make_tasks(farm, 10)
        report = calibrate(tasks, grid.node_ids, farm.execute_task, sim,
                           CalibrationConfig(), grid.node_ids[0], at_time=0.0,
                           consume=False)
        assert report.consumed_tasks == 0
        assert len(tasks) == 10
        assert report.results == []
        assert len(report.observations) == len(grid.node_ids)

    def test_small_queue_pads_with_probes(self):
        grid, sim = make_env(nodes=6)
        farm = TaskFarm(worker=lambda x: x)
        tasks = make_tasks(farm, 3)  # fewer tasks than nodes
        report = calibrate(tasks, grid.node_ids, farm.execute_task, sim,
                           CalibrationConfig(), grid.node_ids[0], at_time=0.0)
        assert report.consumed_tasks == 3
        assert len(tasks) == 0
        assert len(report.observations) == 6

    def test_sample_per_node(self):
        grid, sim = make_env(nodes=4)
        farm = TaskFarm(worker=lambda x: x)
        tasks = make_tasks(farm, 40)
        config = CalibrationConfig(sample_per_node=3)
        report = calibrate(tasks, grid.node_ids, farm.execute_task, sim,
                           config, grid.node_ids[0], at_time=0.0)
        assert len(report.observations) == 12
        assert report.consumed_tasks == 12

    def test_statistical_calibration_with_monitor(self):
        grid, sim = make_env(nodes=6, load="randomwalk")
        monitor = ResourceMonitor(sim, grid.node_ids, master_node=grid.node_ids[0])
        farm = TaskFarm(worker=lambda x: x)
        tasks = make_tasks(farm, 30)
        config = CalibrationConfig(ranking=RankingMode.MULTIVARIATE, sample_per_node=2)
        report = calibrate(tasks, grid.node_ids, farm.execute_task, sim,
                           config, grid.node_ids[0], at_time=0.0, monitor=monitor)
        assert report.mode is RankingMode.MULTIVARIATE
        assert len(report.chosen) >= 1
        assert all(obs.load >= 0.0 for obs in report.observations)
        assert all(obs.bandwidth > 0.0 for obs in report.observations)

    def test_failed_nodes_excluded_from_pool(self):
        grid, sim = make_env(nodes=4)
        dead = grid.node_ids[1]
        grid_failed = grid.with_failure_model(PermanentFailure(failures={dead: 0.0}))
        sim = GridSimulator(grid_failed)
        farm = TaskFarm(worker=lambda x: x)
        tasks = make_tasks(farm, 20)
        report = calibrate(tasks, grid_failed.node_ids, farm.execute_task, sim,
                           CalibrationConfig(), grid_failed.node_ids[0], at_time=1.0)
        assert dead not in report.pool
        assert dead not in report.chosen

    def test_empty_pool_rejected(self):
        grid, sim = make_env()
        farm = TaskFarm(worker=lambda x: x)
        with pytest.raises(CalibrationError):
            calibrate(make_tasks(farm, 5), [], farm.execute_task, sim,
                      CalibrationConfig(), grid.node_ids[0])

    def test_unknown_master_rejected(self):
        grid, sim = make_env()
        farm = TaskFarm(worker=lambda x: x)
        with pytest.raises(CalibrationError):
            calibrate(make_tasks(farm, 5), grid.node_ids, farm.execute_task, sim,
                      CalibrationConfig(), "ghost")

    def test_empty_queue_rejected(self):
        grid, sim = make_env()
        farm = TaskFarm(worker=lambda x: x)
        with pytest.raises(CalibrationError):
            calibrate(collections.deque(), grid.node_ids, farm.execute_task, sim,
                      CalibrationConfig(), grid.node_ids[0])

    def test_unit_times_are_speed_normalised(self):
        grid, sim = make_env(nodes=4, spread=4.0)
        farm = TaskFarm(worker=lambda x: x, cost_model=lambda item: 10.0)
        tasks = make_tasks(farm, 20)
        report = calibrate(tasks, grid.node_ids, farm.execute_task, sim,
                           CalibrationConfig(), grid.node_ids[0], at_time=0.0)
        by_node = {obs.node_id: obs.unit_time for obs in report.observations}
        speeds = grid.speeds()
        fastest = max(speeds, key=speeds.get)
        slowest = min(speeds, key=speeds.get)
        assert by_node[fastest] < by_node[slowest]
        # unit time = 1/speed on a dedicated grid
        assert by_node[fastest] == pytest.approx(1.0 / speeds[fastest])

    def test_tracer_records_phase(self):
        grid, sim = make_env()
        tracer = Tracer()
        farm = TaskFarm(worker=lambda x: x)
        calibrate(make_tasks(farm, 10), grid.node_ids, farm.execute_task, sim,
                  CalibrationConfig(), grid.node_ids[0], at_time=0.0, tracer=tracer)
        assert tracer.filter("phase.calibration.start")
        assert tracer.filter("phase.calibration.end")

    def test_score_of_lookup(self):
        grid, sim = make_env(nodes=3)
        farm = TaskFarm(worker=lambda x: x)
        report = calibrate(make_tasks(farm, 10), grid.node_ids, farm.execute_task,
                           sim, CalibrationConfig(), grid.node_ids[0], at_time=0.0)
        assert report.score_of(grid.node_ids[0]) > 0
        with pytest.raises(CalibrationError):
            report.score_of("ghost")
