"""Backend equivalence and virtual-time regression suite.

Two guarantees are pinned here:

1. **Semantic equivalence** — every skeleton produces
   ``Skeleton.run_sequential``'s outputs on *both* backends (the simulated
   grid and real threads), including ordered pipelines and
   divide-and-conquer recombination.  This is the "clear and consistent
   meaning across platforms" the paper attributes to structured
   parallelism.
2. **Bit-identical virtual time** — the simulated backend reproduces the
   pre-backend executors exactly.  ``GOLDEN`` below was captured from the
   seed runtime (see ``tests/_golden_capture.py``); every virtual-time
   number must match to the last bit.  The one blessed exception is
   ``farm_recal``: the seed crashed on it ("cannot close phase ... before
   it opened") because ``ExecutionReport.finished`` ignored trailing
   recalibrations; its task-level values were captured from the seed's
   FarmExecutor directly and its ``finished``/``makespan`` now correctly
   include the final recalibration report.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro import (
    DivideAndConquer,
    FarmOfPipelines,
    FaultInjectingBackend,
    Grasp,
    GraspConfig,
    MapSkeleton,
    Pipeline,
    PipelineOfFarms,
    ProcessBackend,
    ReduceSkeleton,
    Stage,
    TaskFarm,
    ThreadBackend,
)
from repro.core.parameters import AdaptationAction
from repro.exceptions import CompilationError
from repro.grid.failures import PermanentFailure
from repro.grid.load import ConstantLoad, StepLoad
from repro.grid.node import GridNode
from repro.grid.topology import GridBuilder, GridTopology


def hetero_grid() -> GridTopology:
    return GridBuilder().heterogeneous(nodes=8, speed_spread=4.0).named("hetero").build(seed=1)


def dynamic_grid() -> GridTopology:
    return (
        GridBuilder()
        .heterogeneous(nodes=8, speed_spread=4.0)
        .with_dynamic_load("randomwalk", mean_level=0.35)
        .named("dynamic")
        .build(seed=2)
    )


def spike_grid() -> GridTopology:
    nodes = [
        GridNode(node_id=f"s/n{i}", speed=speed, load_model=ConstantLoad(0.0), site="s")
        for i, speed in enumerate([1.0, 1.5, 2.0, 3.0, 4.0, 6.0])
    ]
    nodes[-1] = nodes[-1].with_load(StepLoad(steps=[(5.0, 0.9)], initial=0.0))
    nodes[-2] = nodes[-2].with_load(StepLoad(steps=[(5.0, 0.9)], initial=0.0))
    return GridTopology(nodes=nodes, name="spike")


def three_stage_pipeline() -> Pipeline:
    return Pipeline(stages=[
        Stage(fn=lambda x: x + 1, cost_model=lambda _: 2.0),
        Stage(fn=lambda x: x * 3, cost_model=lambda _: 4.0),
        Stage(fn=lambda x: x - 5, cost_model=lambda _: 1.0),
    ])


def rerank_config() -> GraspConfig:
    config = GraspConfig.adaptive(threshold_factor=0.3)
    config.execution.adaptation = AdaptationAction.RERANK
    return config


def make_dc() -> DivideAndConquer:
    return DivideAndConquer(
        divide=lambda xs: [xs[:len(xs) // 2], xs[len(xs) // 2:]],
        combine=lambda _p, subs: subs[0] + subs[1],
        solve=lambda xs: sum(xs),
        is_trivial=lambda xs: len(xs) <= 4,
        parallel_depth=3,
    )


#: name -> (grid factory, skeleton factory, inputs factory, config factory)
SCENARIOS = {
    "farm_hetero": (hetero_grid,
                    lambda: TaskFarm(worker=lambda x: x * x, cost_model=lambda _: 3.0),
                    lambda: list(range(40)), GraspConfig.adaptive),
    "farm_spike": (spike_grid,
                   lambda: TaskFarm(worker=lambda x: x + 7, cost_model=lambda _: 5.0),
                   lambda: list(range(60)), GraspConfig.adaptive),
    "farm_dynamic": (dynamic_grid,
                     lambda: TaskFarm(worker=lambda x: 2 * x),
                     lambda: list(range(50)), GraspConfig.adaptive),
    "farm_recal": (spike_grid,
                   lambda: TaskFarm(worker=lambda x: x + 7, cost_model=lambda _: 5.0),
                   lambda: list(range(60)),
                   lambda: GraspConfig.adaptive(threshold_factor=0.3)),
    "farm_rerank": (spike_grid,
                    lambda: TaskFarm(worker=lambda x: x * 2, cost_model=lambda _: 5.0),
                    lambda: list(range(60)), rerank_config),
    "pipeline_hetero": (hetero_grid, three_stage_pipeline,
                        lambda: list(range(30)), GraspConfig.adaptive),
    "pipeline_recal": (spike_grid, three_stage_pipeline,
                       lambda: list(range(40)),
                       lambda: GraspConfig.adaptive(threshold_factor=1.02)),
    "map_dynamic": (dynamic_grid,
                    lambda: MapSkeleton(fn=lambda block: [v * 10 for v in block], blocks=12),
                    lambda: list(range(48)), GraspConfig.adaptive),
    "reduce_hetero": (hetero_grid,
                      lambda: ReduceSkeleton(op=lambda a, b: a + b, identity=0, blocks=8),
                      lambda: list(range(64)), GraspConfig.adaptive),
    "dc_hetero": (hetero_grid, make_dc,
                  lambda: [list(range(64)), list(range(32))], GraspConfig.adaptive),
    # Composition columns: both compositions lower onto the plan IR (a
    # nested fan-of-chain and a replication-hinted chain) and must still
    # mean exactly what their sequential reference means on every backend.
    "farm_of_pipelines": (hetero_grid,
                          lambda: FarmOfPipelines(three_stage_pipeline().stages),
                          lambda: list(range(24)), GraspConfig.adaptive),
    "pipeline_of_farms": (hetero_grid,
                          lambda: PipelineOfFarms(three_stage_pipeline().stages),
                          lambda: list(range(24)), GraspConfig.adaptive),
}

#: Captured from the seed runtime; see module docstring.
GOLDEN = {
    "dc_hetero": {
        "makespan": 1.8204368920078937,
        "execution_finished": 1.8204368920078937,
        "last_result_finished": 1.8204368920078937,
        "recalibrations": 0,
        "rounds": 2,
        "chosen": ['site0/n7', 'site0/n6', 'site0/n5', 'site0/n4', 'site0/n3', 'site0/n2', 'site0/n1', 'site0/n0'],
        "round_thresholds": [0.7536799417266447, 0.7536799417266447],
        "per_node": {'site0/n0': 1, 'site0/n1': 2, 'site0/n2': 2, 'site0/n3': 2, 'site0/n4': 2, 'site0/n5': 2, 'site0/n6': 2, 'site0/n7': 3},
        "outputs": '[2016, 496]',
    },
    "farm_dynamic": {
        "makespan": 5.1290323949420875,
        "execution_finished": 5.1290323949420875,
        "last_result_finished": 5.1290323949420875,
        "recalibrations": 0,
        "rounds": 7,
        "chosen": ['site0/n7', 'site0/n5', 'site0/n6', 'site0/n4', 'site0/n2', 'site0/n3'],
        "round_thresholds": [0.9107999748036469, 0.9107999748036469, 0.9107999748036469, 0.9107999748036469, 0.9107999748036469, 0.9107999748036469, 0.9107999748036469],
        "per_node": {'site0/n0': 1, 'site0/n1': 1, 'site0/n2': 6, 'site0/n3': 5, 'site0/n4': 8, 'site0/n5': 9, 'site0/n6': 8, 'site0/n7': 12},
        "outputs": '[0, 2, 4, 6, 8, 10, 12, 14, 16, 18, 20, 22, 24, 26, 28, 30, 32, 34, 36, 38, 40, 42, 44, 46, 48, 50, 52, 54, 56, 58, 60, 62, 64, 66, 68, 70, 72, 74, 76, 78, 80, 82, 84, 86, 88, 90, 92, 94, 96, 98]',
    },
    "farm_hetero": {
        "makespan": 10.383221148068927,
        "execution_finished": 10.383221148068927,
        "last_result_finished": 10.383221148068927,
        "recalibrations": 0,
        "rounds": 5,
        "chosen": ['site0/n7', 'site0/n6', 'site0/n5', 'site0/n4', 'site0/n3', 'site0/n2', 'site0/n1', 'site0/n0'],
        "round_thresholds": [0.7536799417266447, 0.7536799417266447, 0.7536799417266447, 0.7536799417266447, 0.7536799417266447],
        "per_node": {'site0/n0': 1, 'site0/n1': 4, 'site0/n2': 4, 'site0/n3': 5, 'site0/n4': 5, 'site0/n5': 6, 'site0/n6': 7, 'site0/n7': 8},
        "outputs": '[0, 1, 4, 9, 16, 25, 36, 49, 64, 81, 100, 121, 144, 169, 196, 225, 256, 289, 324, 361, 400, 441, 484, 529, 576, 625, 676, 729, 784, 841, 900, 961, 1024, 1089, 1156, 1225, 1296, 1369, 1444, 1521]',
    },
    "farm_recal": {
        "makespan": 109.30186538666679,
        "execution_finished": 109.30186538666679,
        "last_result_finished": 101.79185066666697,
        "recalibrations": 6,
        "rounds": 6,
        "chosen": ['s/n5', 's/n4', 's/n3', 's/n2', 's/n1'],
        "round_thresholds": [0.125, 0.24999999999999997, 0.25000000000000006, 0.25000000000000006, 0.24999999999999983, 0.24999999999999983],
        "per_node": {'s/n0': 7, 's/n1': 13, 's/n2': 13, 's/n3': 13, 's/n4': 7, 's/n5': 7},
        "outputs": '[7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27, 28, 29, 30, 31, 32, 33, 34, 35, 36, 37, 38, 39, 40, 41, 42, 43, 44, 45, 46, 47, 48, 49, 50, 51, 52, 53, 54, 55, 56, 57, 58, 59, 60, 61, 62, 63, 64, 65, 66]',
    },
    "farm_rerank": {
        "makespan": 47.56509568000019,
        "execution_finished": 47.56509568000019,
        "last_result_finished": 47.56509568000019,
        "recalibrations": 12,
        "rounds": 13,
        "chosen": ['s/n5', 's/n4', 's/n3', 's/n2', 's/n1'],
        "round_thresholds": [0.125, 0.125, 0.125, 0.125, 0.125, 0.125, 0.125, 0.125, 0.125, 0.125, 0.125, 0.125, 0.125],
        "per_node": {'s/n0': 1, 's/n1': 12, 's/n2': 15, 's/n3': 22, 's/n4': 4, 's/n5': 6},
        "outputs": '[0, 2, 4, 6, 8, 10, 12, 14, 16, 18, 20, 22, 24, 26, 28, 30, 32, 34, 36, 38, 40, 42, 44, 46, 48, 50, 52, 54, 56, 58, 60, 62, 64, 66, 68, 70, 72, 74, 76, 78, 80, 82, 84, 86, 88, 90, 92, 94, 96, 98, 100, 102, 104, 106, 108, 110, 112, 114, 116, 118]',
    },
    "farm_spike": {
        "makespan": 46.71674026666687,
        "execution_finished": 46.71674026666687,
        "last_result_finished": 46.71674026666687,
        "recalibrations": 0,
        "rounds": 11,
        "chosen": ['s/n5', 's/n4', 's/n3', 's/n2', 's/n1'],
        "round_thresholds": [0.625, 0.625, 0.625, 0.625, 0.625, 0.625, 0.625, 0.625, 0.625, 0.625, 0.625],
        "per_node": {'s/n0': 1, 's/n1': 12, 's/n2': 15, 's/n3': 22, 's/n4': 4, 's/n5': 6},
        "outputs": '[7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27, 28, 29, 30, 31, 32, 33, 34, 35, 36, 37, 38, 39, 40, 41, 42, 43, 44, 45, 46, 47, 48, 49, 50, 51, 52, 53, 54, 55, 56, 57, 58, 59, 60, 61, 62, 63, 64, 65, 66]',
    },
    "map_dynamic": {
        "makespan": 9.196904533162174,
        "execution_finished": 9.196904533162174,
        "last_result_finished": 9.196904533162174,
        "recalibrations": 0,
        "rounds": 1,
        "chosen": ['site0/n7', 'site0/n5', 'site0/n6', 'site0/n4', 'site0/n2', 'site0/n3'],
        "round_thresholds": [0.9107999748036469],
        "per_node": {'site0/n0': 1, 'site0/n1': 1, 'site0/n2': 2, 'site0/n3': 2, 'site0/n4': 2, 'site0/n5': 2, 'site0/n6': 1, 'site0/n7': 1},
        "outputs": '[0, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100, 110, 120, 130, 140, 150, 160, 170, 180, 190, 200, 210, 220, 230, 240, 250, 260, 270, 280, 290, 300, 310, 320, 330, 340, 350, 360, 370, 380, 390, 400, 410, 420, 430, 440, 450, 460, 470]',
    },
    "pipeline_hetero": {
        "makespan": 29.98120834338666,
        "execution_finished": 29.98120834338666,
        "last_result_finished": 29.98120834338666,
        "recalibrations": 0,
        "rounds": 8,
        "chosen": ['site0/n7', 'site0/n6', 'site0/n5', 'site0/n4', 'site0/n3', 'site0/n2', 'site0/n1', 'site0/n0'],
        "round_thresholds": [0.7536799417266447, 0.7536799417266447, 0.7536799417266447, 0.7536799417266447, 0.7536799417266447, 0.7536799417266447, 0.7536799417266447, 0.7536799417266447],
        "per_node": {'site0/n0': 1, 'site0/n1': 1, 'site0/n2': 1, 'site0/n3': 1, 'site0/n4': 1, 'site0/n5': 23, 'site0/n6': 1, 'site0/n7': 1},
        "outputs": '[-2, 1, 4, 7, 10, 13, 16, 19, 22, 25, 28, 31, 34, 37, 40, 43, 46, 49, 52, 55, 58, 61, 64, 67, 70, 73, 76, 79, 82, 85]',
    },
    "pipeline_recal": {
        "makespan": 92.88340693333343,
        "execution_finished": 92.88340693333343,
        "last_result_finished": 92.88340693333343,
        "recalibrations": 1,
        "rounds": 12,
        "chosen": ['s/n5', 's/n4', 's/n3', 's/n2', 's/n1'],
        "round_thresholds": [0.42500000000000004, 0.8499999999999999, 0.8499999999999999, 0.8499999999999999, 0.8499999999999999, 0.8499999999999999, 0.8499999999999999, 0.8499999999999999, 0.8499999999999999, 0.8499999999999999, 0.8499999999999999, 0.8499999999999999],
        "per_node": {'s/n0': 1, 's/n1': 32, 's/n2': 1, 's/n3': 4, 's/n4': 1, 's/n5': 1},
        "outputs": '[-2, 1, 4, 7, 10, 13, 16, 19, 22, 25, 28, 31, 34, 37, 40, 43, 46, 49, 52, 55, 58, 61, 64, 67, 70, 73, 76, 79, 82, 85, 88, 91, 94, 97, 100, 103, 106, 109, 112, 115]',
    },
    "reduce_hetero": {
        "makespan": 8.000000000000144,
        "execution_finished": 8.000000000000144,
        "last_result_finished": 8.000000000000144,
        "recalibrations": 0,
        "rounds": 0,
        "chosen": ['site0/n7', 'site0/n6', 'site0/n5', 'site0/n4', 'site0/n3', 'site0/n2', 'site0/n1'],
        "round_thresholds": [],
        "per_node": {'site0/n0': 1, 'site0/n1': 1, 'site0/n2': 1, 'site0/n3': 1, 'site0/n4': 1, 'site0/n5': 1, 'site0/n6': 1, 'site0/n7': 1},
        "outputs": '2016',
    },
}


def run_scenario(name: str, backend):
    grid_fn, skeleton_fn, inputs_fn, config_fn = SCENARIOS[name]
    grasp = Grasp(skeleton=skeleton_fn(), grid=grid_fn(), config=config_fn(),
                  backend=backend)
    return grasp.run(inputs=inputs_fn())


class TestSimulatedBitIdentity:
    """The simulated backend reproduces the seed executors bit-for-bit."""

    @pytest.mark.parametrize("name", sorted(GOLDEN))
    def test_golden(self, name):
        result = run_scenario(name, backend="simulated")
        expected = GOLDEN[name]
        assert repr(result.outputs) == expected["outputs"]
        assert result.makespan == expected["makespan"]
        assert result.execution.finished == expected["execution_finished"]
        assert result.recalibrations == expected["recalibrations"]
        assert len(result.execution.rounds) == expected["rounds"]
        assert [r.threshold for r in result.execution.rounds] == \
            expected["round_thresholds"]
        assert result.chosen_nodes == expected["chosen"]
        assert result.per_node_counts() == expected["per_node"]
        assert max(
            (r.finished for r in result.execution.results),
            default=result.execution.started,
        ) == expected["last_result_finished"]

    def test_default_backend_is_simulated(self):
        """Omitting backend= keeps the historical behaviour."""
        a = run_scenario("farm_hetero", backend=None)
        b = run_scenario("farm_hetero", backend="simulated")
        assert a.makespan == b.makespan
        assert a.outputs == b.outputs

    def test_finished_covers_trailing_recalibration(self):
        """ExecutionReport.finished accounts for recalibration reports."""
        result = run_scenario("farm_recal", backend="simulated")
        report = result.execution
        assert report.recalibration_reports
        assert report.finished >= max(r.finished for r in report.recalibration_reports)
        assert report.finished >= max(r.finished for r in report.results)


class TestBackendEquivalence:
    """Every wall-clock backend reproduces run_sequential for every skeleton."""

    @pytest.mark.parametrize("backend", ["simulated", "thread", "asyncio"])
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_matches_sequential(self, name, backend):
        grid_fn, skeleton_fn, inputs_fn, config_fn = SCENARIOS[name]
        reference = skeleton_fn().run_sequential(inputs_fn())
        result = run_scenario(name, backend=backend)
        assert result.outputs == reference

    def test_thread_backend_instance(self):
        """A caller-owned ThreadBackend works and survives close()."""
        grid = hetero_grid()
        with ThreadBackend(topology=grid) as backend:
            farm = TaskFarm(worker=lambda x: x * x)
            result = Grasp(skeleton=farm, grid=grid, backend=backend).run(
                inputs=range(32)
            )
            assert result.outputs == [x * x for x in range(32)]
        backend.close()  # idempotent

    def test_thread_pipeline_preserves_order(self):
        grid = hetero_grid()
        pipeline = three_stage_pipeline()
        result = Grasp(skeleton=pipeline, grid=grid, backend="thread").run(
            inputs=range(64)
        )
        assert result.outputs == [(x + 1) * 3 - 5 for x in range(64)]


# --------------------------------------------------------------------------
# Process-backend column.  Worker processes pickle payload functions by
# reference, so these scenarios use module-level functions instead of the
# lambdas of SCENARIOS (whose golden timings must stay untouched).

def _square(x):
    return x * x


def _busy_square(x):
    # A touch of real compute so wall-clock monitoring sees non-zero times.
    total = 0
    for i in range(200):
        total += i
    return x * x


def _stage_inc(x):
    return x + 1


def _stage_triple(x):
    return x * 3


def _stage_dec(x):
    return x - 5


def _map_tens(block):
    return [v * 10 for v in block]


def _add(a, b):
    return a + b


def _dc_divide(xs):
    return [xs[:len(xs) // 2], xs[len(xs) // 2:]]


def _dc_combine(_parent, subs):
    return subs[0] + subs[1]


def _dc_solve(xs):
    return sum(xs)


def _dc_trivial(xs):
    return len(xs) <= 4


def process_grid() -> GridTopology:
    # Small pool: each node is one real worker process.
    return GridBuilder().homogeneous(nodes=4, speed=1.0).named("proc").build(seed=3)


#: name -> (skeleton factory, inputs factory) — everything picklable.
PROCESS_SCENARIOS = {
    "farm": (lambda: TaskFarm(worker=_busy_square), lambda: list(range(24))),
    "pipeline": (lambda: Pipeline(stages=[Stage(fn=_stage_inc),
                                          Stage(fn=_stage_triple),
                                          Stage(fn=_stage_dec)]),
                 lambda: list(range(16))),
    "map": (lambda: MapSkeleton(fn=_map_tens, blocks=6),
            lambda: list(range(24))),
    "reduce": (lambda: ReduceSkeleton(op=_add, identity=0, blocks=6),
               lambda: list(range(32))),
    "dc": (lambda: DivideAndConquer(
        divide=_dc_divide, combine=_dc_combine, solve=_dc_solve,
        is_trivial=_dc_trivial, parallel_depth=2,
    ), lambda: [list(range(32)), list(range(16))]),
    # Compositions cross the process boundary as plans: nested chain
    # stages (farm_of_pipelines) and a replication-hinted chain
    # (pipeline_of_farms) must both pickle and match the reference.
    "farm_of_pipelines": (lambda: FarmOfPipelines([Stage(fn=_stage_inc),
                                                   Stage(fn=_stage_triple),
                                                   Stage(fn=_stage_dec)]),
                          lambda: list(range(12))),
    "pipeline_of_farms": (lambda: PipelineOfFarms([Stage(fn=_stage_inc),
                                                   Stage(fn=_stage_triple),
                                                   Stage(fn=_stage_dec)]),
                          lambda: list(range(12))),
}


class TestProcessBackendEquivalence:
    """The process backend reproduces run_sequential for every skeleton."""

    @pytest.mark.parametrize("name", sorted(PROCESS_SCENARIOS))
    def test_matches_sequential(self, name):
        skeleton_fn, inputs_fn = PROCESS_SCENARIOS[name]
        reference = skeleton_fn().run_sequential(inputs_fn())
        result = Grasp(skeleton=skeleton_fn(), grid=process_grid(),
                       config=GraspConfig.adaptive(),
                       backend="process").run(inputs=inputs_fn())
        assert result.outputs == reference

    @pytest.mark.parametrize("backend", ["simulated", "thread", "process"])
    def test_chunked_dispatch_matches_sequential(self, backend):
        skeleton_fn, inputs_fn = PROCESS_SCENARIOS["farm"]
        reference = skeleton_fn().run_sequential(inputs_fn())
        config = GraspConfig.adaptive()
        config.execution.chunk_size = 4
        result = Grasp(skeleton=skeleton_fn(), grid=process_grid(),
                       config=config, backend=backend).run(inputs=inputs_fn())
        assert result.outputs == reference
        assert result.total_tasks == len(inputs_fn())

    def test_chunked_dispatch_with_simulated_failures_recovers(self):
        # Eager (simulated) chunk path + mid-chunk node death: lost tasks
        # re-enqueue and the run completes off the dead node.
        grid = process_grid().with_failure_model(
            PermanentFailure.at(5.0, process_grid().node_ids[1]))
        skeleton = TaskFarm(worker=_square, cost_model=lambda _: 4.0)
        config = GraspConfig.adaptive()
        config.execution.chunk_size = 3
        result = Grasp(skeleton=skeleton, grid=grid, config=config,
                       backend="simulated").run(inputs=range(30))
        assert result.outputs == [x * x for x in range(30)]

    def test_process_backend_instance(self):
        grid = process_grid()
        with ProcessBackend(topology=grid) as backend:
            result = Grasp(skeleton=TaskFarm(worker=_square), grid=grid,
                           backend=backend).run(inputs=range(16))
            assert result.outputs == [x * x for x in range(16)]
        backend.close()  # idempotent


# --------------------------------------------------------------------------
# Asyncio-backend column: coroutine payloads on the event loop.  Coroutine
# workers are awaited natively by the asyncio backend and resolved via a
# private loop everywhere else (run_sequential included), so the same async
# program means the same thing on every backend.

import asyncio


async def _async_square(x):
    await asyncio.sleep(0)
    return x * x


async def _async_fetchlike(x):
    await asyncio.sleep(0.005)
    return x + 100


class TestAsyncBackendEquivalence:
    """Coroutine payloads: same semantics, overlapped waits."""

    def test_coroutine_farm_matches_sequential(self):
        farm = TaskFarm(worker=_async_square)
        reference = farm.run_sequential(range(24))
        assert reference == [x * x for x in range(24)]
        result = Grasp(skeleton=TaskFarm(worker=_async_square),
                       grid=hetero_grid(), backend="asyncio").run(inputs=range(24))
        assert result.outputs == reference

    @pytest.mark.parametrize("backend", ["simulated", "thread", "asyncio"])
    def test_coroutine_payloads_run_on_every_backend(self, backend):
        result = Grasp(skeleton=TaskFarm(worker=_async_square),
                       grid=hetero_grid(), backend=backend).run(inputs=range(12))
        assert result.outputs == [x * x for x in range(12)]

    def test_coroutine_pipeline_stage(self):
        pipeline = Pipeline(stages=[Stage(fn=_async_fetchlike),
                                    Stage(fn=lambda x: x - 100)])
        result = Grasp(skeleton=pipeline, grid=hetero_grid(),
                       backend="asyncio").run(inputs=range(10))
        assert result.outputs == list(range(10))

    def test_async_backend_instance(self):
        from repro import AsyncBackend

        grid = hetero_grid()
        with AsyncBackend(topology=grid) as backend:
            result = Grasp(skeleton=TaskFarm(worker=_async_square), grid=grid,
                           backend=backend).run(inputs=range(16))
            assert result.outputs == [x * x for x in range(16)]
        backend.close()  # idempotent

    def test_waits_overlap_across_node_queues(self):
        # 24 x 5ms awaits on 8 serial queues must take far less than the
        # 120ms a non-overlapping runtime would need (bound is generous:
        # the point is overlap, not a tight benchmark).
        grid = hetero_grid()
        config = GraspConfig.non_adaptive()
        config.execution.master_computes = True
        start = time.perf_counter()
        result = Grasp(skeleton=TaskFarm(worker=_async_fetchlike), grid=grid,
                       config=config, backend="asyncio").run(inputs=range(24))
        elapsed = time.perf_counter() - start
        assert result.outputs == [x + 100 for x in range(24)]
        assert elapsed < 0.100, f"no overlap: {elapsed:.3f}s for 24x5ms waits"

    def test_close_from_payload_raises_instead_of_deadlocking(self):
        # A payload closing its own backend would block the loop thread on
        # work only that thread can run; it must fail loudly instead.
        from repro import AsyncBackend
        from repro.exceptions import GridError
        from repro.skeletons.base import Task

        grid = process_grid()
        with AsyncBackend(topology=grid) as backend:
            handle = backend.dispatch(
                Task(task_id=0, payload=1), grid.node_ids[0],
                lambda t: backend.close(),
                master_node=grid.node_ids[0], at_time=backend.now,
            )
            with pytest.raises(GridError, match="event-loop thread"):
                handle.outcome()
            # The backend survives the rejected close and keeps working.
            ok = backend.dispatch(
                Task(task_id=1, payload=2), grid.node_ids[0],
                lambda t: t.payload * 2,
                master_node=grid.node_ids[0], at_time=backend.now,
            ).outcome()
            assert ok.output == 4

    def test_concurrent_close_is_safe(self):
        # An explicit close racing a StreamingRun finalizer (GC thread)
        # must stop the event loop exactly once, with neither closer
        # raising nor hanging — including with payloads still in flight
        # (a finer-grained close could stop the loop under a closer still
        # waiting for a queue to drain).
        from repro import AsyncBackend
        from repro.skeletons.base import Task

        grid = process_grid()
        backend = AsyncBackend(topology=grid)
        handles = [
            backend.dispatch(
                Task(task_id=i, payload=i),
                grid.node_ids[i % len(grid.node_ids)],
                lambda t: _async_fetchlike(t.payload),
                master_node=grid.node_ids[0], at_time=backend.now,
            )
            for i in range(8)
        ]
        errors = []
        barrier = threading.Barrier(6)

        def racer():
            barrier.wait()
            try:
                backend.close()
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=racer) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10.0)
        assert not any(t.is_alive() for t in threads), "a closer hung"
        assert errors == []
        # close() waits for queued work: every dispatch resolved.
        assert [h.outcome().output for h in handles] == \
            [i + 100 for i in range(8)]

    def test_slowdown_does_not_stall_other_queues(self):
        # An injected slowdown must degrade only its node: on the asyncio
        # backend the delay is awaited, not slept, so other node queues on
        # the shared loop keep draining while the slowed node waits.
        from repro import AsyncBackend
        from repro.skeletons.base import Task

        grid = process_grid()
        slowed, fast = grid.node_ids[0], grid.node_ids[1]
        inner = AsyncBackend(topology=grid)
        backend = FaultInjectingBackend(inner, slowdowns={slowed: 0.3})
        with backend:
            slow_handle = backend.dispatch(
                Task(task_id=0, payload=1), slowed,
                lambda t: _async_fetchlike(t.payload),
                master_node=fast, at_time=backend.now,
            )
            start = time.perf_counter()
            fast_outcome = backend.dispatch(
                Task(task_id=1, payload=2), fast,
                lambda t: _async_fetchlike(t.payload),
                master_node=fast, at_time=backend.now,
            ).outcome()
            fast_elapsed = time.perf_counter() - start
            slow_outcome = slow_handle.outcome()
        assert fast_outcome.output == 102
        assert slow_outcome.output == 101
        assert fast_elapsed < 0.15, (
            f"unslowed node took {fast_elapsed:.3f}s: the slowdown sleeve "
            "stalled the shared event loop"
        )
        assert slow_outcome.duration >= 0.3

    def test_fault_injected_asyncio_run_completes(self):
        grid = process_grid()
        victim = grid.node_ids[1]
        from repro import AsyncBackend

        inner = AsyncBackend(topology=grid)
        backend = FaultInjectingBackend(
            inner, failures=PermanentFailure.at(inner.now + 0.02, victim))
        with backend:
            result = Grasp(skeleton=TaskFarm(worker=_async_fetchlike),
                           grid=grid, config=GraspConfig.adaptive(),
                           backend=backend).run(inputs=range(32))
        assert result.outputs == [x + 100 for x in range(32)]
        assert result.total_tasks == 32


# --------------------------------------------------------------------------
# Cluster-backend column: the same skeletons on real TCP worker agents.
# One 2-worker LocalCluster for the whole class (agents are subprocesses
# and boot cost is real); payloads are the module-level process-scenario
# functions, which the agents can import because LocalCluster propagates
# this interpreter's sys.path.

class TestClusterBackendEquivalence:
    """A 2-worker localhost cluster reproduces run_sequential exactly."""

    @pytest.fixture(scope="class")
    def cluster_backend(self):
        from repro.cluster import LocalCluster

        grid = GridBuilder().homogeneous(nodes=2, speed=1.0).named(
            "cluster-eq").build(seed=4)
        with LocalCluster(workers=list(grid.node_ids)) as cluster:
            backend = cluster.backend(topology=grid)
            yield backend
            backend.close()

    def test_farm_matches_sequential(self, cluster_backend):
        farm = TaskFarm(worker=_busy_square)
        reference = farm.run_sequential(range(24))
        result = Grasp(skeleton=TaskFarm(worker=_busy_square),
                       grid=cluster_backend.topology,
                       config=GraspConfig.adaptive(),
                       backend=cluster_backend).run(inputs=range(24))
        assert result.outputs == reference
        assert result.total_tasks == 24

    def test_pipeline_matches_sequential(self, cluster_backend):
        # Two stages on two workers (a pipeline needs one node per stage).
        make = lambda: Pipeline(stages=[Stage(fn=_stage_inc),
                                        Stage(fn=_stage_triple)])
        reference = make().run_sequential(range(20))
        result = Grasp(skeleton=make(), grid=cluster_backend.topology,
                       backend=cluster_backend).run(inputs=range(20))
        assert result.outputs == reference

    def test_chunked_farm_matches_sequential(self, cluster_backend):
        config = GraspConfig.adaptive()
        config.execution.chunk_size = 3
        result = Grasp(skeleton=TaskFarm(worker=_busy_square),
                       grid=cluster_backend.topology, config=config,
                       backend=cluster_backend).run(inputs=range(18))
        assert result.outputs == [_busy_square(x) for x in range(18)]

    def test_nested_farm_of_pipelines_matches_sequential(self, cluster_backend):
        # A *nested* composition on the distributed backend: each unit of
        # the fan is dispatched as a chain through the TCP agents, and the
        # adaptive loop (threshold, windows, recalibration budget) runs
        # over it exactly as for the primitives.
        make = lambda: FarmOfPipelines([Stage(fn=_stage_inc),
                                        Stage(fn=_stage_triple)])
        reference = make().run_sequential(range(16))
        result = Grasp(skeleton=make(), grid=cluster_backend.topology,
                       config=GraspConfig.adaptive(),
                       backend=cluster_backend).run(inputs=range(16))
        assert result.outputs == reference
        assert result.total_tasks == 16

    def test_pipeline_of_farms_matches_sequential(self, cluster_backend):
        # Two replicable stages over two workers (the replication hint has
        # no spares to use here; the mapping still needs one node each).
        make = lambda: PipelineOfFarms([Stage(fn=_stage_inc),
                                        Stage(fn=_stage_triple)])
        reference = make().run_sequential(range(14))
        result = Grasp(skeleton=make(), grid=cluster_backend.topology,
                       backend=cluster_backend).run(inputs=range(14))
        assert result.outputs == reference


def _slow_square(x):
    time.sleep(0.004)
    return x * x


class TestFaultInjectedRuns:
    """A mid-run node death on a concurrent backend still completes the job."""

    @pytest.mark.parametrize("chunk_size", [1, 3])
    @pytest.mark.parametrize("make_inner", [
        pytest.param(lambda grid: ThreadBackend(topology=grid), id="thread"),
        pytest.param(lambda grid: ProcessBackend(topology=grid), id="process"),
    ])
    def test_mid_run_death_completes(self, make_inner, chunk_size):
        grid = process_grid()
        victim = grid.node_ids[1]
        inner = make_inner(grid)
        backend = FaultInjectingBackend(
            inner, failures=PermanentFailure.at(inner.now + 0.03, victim))
        config = GraspConfig.adaptive()
        config.execution.chunk_size = chunk_size
        with backend:
            result = Grasp(skeleton=TaskFarm(worker=_slow_square), grid=grid,
                           config=config,
                           backend=backend).run(inputs=range(48))
        assert result.outputs == [x * x for x in range(48)]
        assert result.total_tasks == 48
        # Once the schedule kills the node, no completed result may have
        # been accepted from it (in-flight work is converted to losses).
        death = backend.failures.failures[victim]
        for record in result.execution.results:
            # Recalibration probes are exempt from the loss check
            # (Algorithm 1 has no failure path); farm results are not.
            if record.node_id == victim and not record.during_calibration:
                assert record.finished <= death + 1e-6

    def test_chunked_window_still_uses_every_worker(self):
        # Regression: the monitoring-window budget is counted in monitor
        # units × chunk_size, so chunking must not serialise the farm onto
        # one node per round.
        grid = process_grid()
        config = GraspConfig.non_adaptive()
        config.execution.chunk_size = 4
        config.execution.master_computes = True
        with ThreadBackend(topology=grid) as backend:
            result = Grasp(skeleton=TaskFarm(worker=_slow_square), grid=grid,
                           config=config, backend=backend).run(inputs=range(32))
        assert result.outputs == [x * x for x in range(32)]
        # 32 tasks in chunks of 4 over 4 workers: execution-phase work must
        # land on several nodes, not pile onto whichever was dispatched first.
        execution_nodes = {r.node_id for r in result.execution.results}
        assert len(execution_nodes) >= 3

    def test_node_losing_every_task_aborts_instead_of_livelocking(self):
        import dataclasses

        class _AllLostHandle:
            def __init__(self, inner):
                self._inner = inner
                self.node_id = inner.node_id
                self.submitted = inner.submitted
                self.master_free_after = inner.master_free_after
                self.next_emit = inner.next_emit

            def done(self):
                return self._inner.done()

            def outcome(self):
                chunk = self._inner.outcome()
                return dataclasses.replace(chunk, outcomes=tuple(
                    dataclasses.replace(o, output=None, lost=True)
                    for o in chunk.outcomes
                ))

        class AlwaysLosingBackend(ThreadBackend):
            """Loses every farm task while staying 'available' — the shape
            of a worker that can never run work but cannot be seen dead."""

            def dispatch_chunk(self, tasks, node_id, execute_fn, master_node,
                               at_time, check_loss=True, collect_output=True):
                handle = super().dispatch_chunk(
                    tasks, node_id, execute_fn, master_node=master_node,
                    at_time=at_time, check_loss=check_loss,
                    collect_output=collect_output)
                return _AllLostHandle(handle) if check_loss else handle

        from repro.exceptions import ExecutionError

        grid = GridBuilder().homogeneous(nodes=2).named("lossy").build(seed=0)
        with AlwaysLosingBackend(topology=grid) as backend:
            with pytest.raises(ExecutionError, match="lost"):
                Grasp(skeleton=TaskFarm(worker=_square), grid=grid,
                      backend=backend).run(inputs=range(8))

    def test_slowdown_run_completes(self):
        grid = process_grid()
        dragged = grid.node_ids[-1]
        backend = FaultInjectingBackend(ThreadBackend(topology=grid),
                                        slowdowns={dragged: 0.01})
        with backend:
            result = Grasp(skeleton=TaskFarm(worker=_slow_square), grid=grid,
                           config=GraspConfig.adaptive(),
                           backend=backend).run(inputs=range(24))
        assert result.outputs == [x * x for x in range(24)]


class TestLifecycleOnErrorPaths:
    """Internally-created backends must not leak workers when a run fails."""

    @staticmethod
    def _grasp_threads():
        return [t for t in threading.enumerate()
                if t.name.startswith("grasp-") and t.is_alive()]

    def test_failing_worker_closes_thread_backend(self):
        def boom(x):
            raise RuntimeError("payload exploded")

        grid = GridBuilder().homogeneous(nodes=3).named("err").build(seed=0)
        with pytest.raises(RuntimeError, match="payload exploded"):
            Grasp(skeleton=TaskFarm(worker=boom), grid=grid,
                  backend="thread").run(inputs=range(8))
        assert self._grasp_threads() == []

    def test_compilation_failure_closes_created_backend(self, monkeypatch):
        from repro.core import compilation

        closed = []

        class SpyBackend(ThreadBackend):
            def close(self):
                closed.append(True)
                super().close()

        monkeypatch.setattr(compilation, "ThreadBackend", SpyBackend)
        grid = GridBuilder().homogeneous(nodes=3).named("err").build(seed=0)
        config = GraspConfig()
        config.master_node = "ghost"
        with pytest.raises(CompilationError, match="does not exist"):
            Grasp(skeleton=TaskFarm(worker=_square), grid=grid, config=config,
                  backend="thread").run(inputs=range(4))
        assert closed


class TestCompilationMasterValidation:
    """compile_program rejects a master outside the co-allocated pool."""

    def test_unavailable_master_rejected(self):
        from repro.grid.failures import ScheduledFailures

        grid = (
            GridBuilder().homogeneous(nodes=4).named("flaky").build(seed=0)
        )
        down = grid.node_ids[1]
        grid = grid.with_failure_model(
            ScheduledFailures(windows={down: [(0.0, 10.0)]})
        )
        config = GraspConfig()
        config.master_node = down
        farm = TaskFarm(worker=lambda x: x)
        with pytest.raises(CompilationError, match="not available"):
            Grasp(skeleton=farm, grid=grid, config=config).run(inputs=range(4))

    def test_missing_master_still_rejected(self):
        grid = GridBuilder().homogeneous(nodes=4).build(seed=0)
        config = GraspConfig()
        config.master_node = "ghost"
        farm = TaskFarm(worker=lambda x: x)
        with pytest.raises(CompilationError, match="does not exist"):
            Grasp(skeleton=farm, grid=grid, config=config).run(inputs=range(4))
