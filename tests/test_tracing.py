"""The observability layer: trace sinks, retention, thread safety, plumbing.

Covers the tracer's three guarantees (thread-safe recording/iteration,
bounded in-memory retention with sinks seeing every event, honest
``time=None`` stamps before a clock is bound) plus the configuration
plumbing that turns them on: ``GraspConfig.trace_path`` /
``trace_max_events``, the ``GRASP_TRACE`` environment variable, and the
``Grasp(..., trace_path=...)`` shorthand.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro import Grasp, GraspConfig, GridBuilder, TaskFarm
from repro.exceptions import ConfigurationError
from repro.utils.tracing import (
    DEFAULT_MAX_EVENTS,
    JsonlTraceSink,
    TraceEvent,
    Tracer,
)


def _grid(nodes: int = 4):
    return (GridBuilder().heterogeneous(nodes=nodes, speed_spread=4.0)
            .build(seed=1))


class _ListSink:
    """A sink that remembers everything it was handed."""

    def __init__(self):
        self.events = []
        self.run_ids = set()
        self.closed = 0

    def emit(self, event, run_id):
        self.events.append(event)
        self.run_ids.add(run_id)

    def close(self):
        self.closed += 1


class _ExplodingSink:
    def emit(self, event, run_id):
        raise OSError("disk full")

    def close(self):
        pass


# ---------------------------------------------------------------------------
class TestTracerThreadSafety:
    def test_concurrent_record_while_iterate_stress(self):
        # The historical bug: record() appended to the live list __iter__
        # handed out, so a reader iterating during a run hit
        # "RuntimeError: list changed size during iteration".
        tracer = Tracer()
        stop = threading.Event()
        failures = []

        def writer():
            i = 0
            try:
                while not stop.is_set():
                    tracer.record("stress.tick", i=i)
                    i += 1
            except BaseException as exc:  # pragma: no cover - the bug
                failures.append(exc)

        threads = [threading.Thread(target=writer) for _ in range(4)]
        for thread in threads:
            thread.start()
        try:
            deadline = time.monotonic() + 0.3
            while time.monotonic() < deadline:
                for event in tracer:        # iterates a snapshot
                    assert event.category == "stress.tick"
                tracer.filter("stress")
                tracer.categories()
                len(tracer)
                tracer.events
        finally:
            stop.set()
            for thread in threads:
                thread.join()
        assert failures == []
        # Sequence numbers are unique and appear in recording order.
        seqs = [e.seq for e in tracer.events]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)

    def test_concurrent_clear_is_safe(self):
        tracer = Tracer()
        stop = threading.Event()

        def writer():
            while not stop.is_set():
                tracer.record("x")

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            for _ in range(200):
                tracer.clear()
        finally:
            stop.set()
            thread.join()


class TestRingRetention:
    def test_ring_drops_oldest_and_counts_but_sinks_see_all(self):
        sink = _ListSink()
        tracer = Tracer(max_events=10)
        tracer.attach(sink)
        for i in range(25):
            tracer.record("x", i=i)
        assert len(tracer) == 10
        assert tracer.dropped_events == 15
        assert [e.data["i"] for e in tracer.events] == list(range(15, 25))
        # The sink received every event, dropped-from-ring ones included.
        assert [e.data["i"] for e in sink.events] == list(range(25))

    def test_default_ring_is_bounded(self):
        assert Tracer().max_events == DEFAULT_MAX_EVENTS

    def test_max_events_validation(self):
        with pytest.raises(ValueError):
            Tracer(max_events=0)

    def test_clear_resets_ring_and_dropped_counter(self):
        tracer = Tracer(max_events=2)
        for _ in range(5):
            tracer.record("x")
        tracer.clear()
        assert len(tracer) == 0
        assert tracer.dropped_events == 0


class TestUnboundClock:
    def test_unbound_clock_events_carry_time_none_not_zero(self):
        # Regression: the placeholder `lambda: 0.0` clock stamped pre-bind
        # events time=0.0, sorting them spuriously before calibration.
        tracer = Tracer()
        tracer.record("early")
        event = tracer.events[0]
        assert event.time is None
        assert event.wall > 0.0
        tracer.bind_clock(lambda: 7.5)
        tracer.record("late")
        assert tracer.events[1].time == 7.5
        # seq keeps the causal order even while no clock existed.
        assert tracer.events[0].seq < tracer.events[1].seq

    def test_explicit_clock_still_honoured(self):
        tracer = Tracer(clock=lambda: 3.0)
        tracer.record("x")
        assert tracer.events[0].time == 3.0


class TestSinks:
    def test_jsonl_sink_writes_one_json_line_per_event(self, tmp_path):
        path = tmp_path / "run.jsonl"
        tracer = Tracer()
        tracer.attach(JsonlTraceSink(path))
        tracer.record("a.b", "hello", n=1)
        tracer.record("c", obj=object())    # non-JSON data → repr fallback
        tracer.close()
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert [line["category"] for line in lines] == ["a.b", "c"]
        assert [line["seq"] for line in lines] == [0, 1]
        assert lines[0]["run"] == tracer.run_id
        assert lines[0]["data"] == {"n": 1}
        assert isinstance(lines[1]["data"]["obj"], str)

    def test_failing_sink_is_detached_not_fatal(self):
        tracer = Tracer()
        bad = _ExplodingSink()
        good = _ListSink()
        tracer.attach(bad)
        tracer.attach(good)
        with pytest.warns(RuntimeWarning, match="detached"):
            tracer.record("x")
        assert bad not in tracer.sinks
        assert good in tracer.sinks
        tracer.record("y")                  # recording continues
        assert len(tracer) == 2
        assert len(good.events) == 2

    def test_close_is_idempotent_and_keeps_tracer_readable(self):
        sink = _ListSink()
        tracer = Tracer()
        tracer.attach(sink)
        tracer.record("before")
        tracer.close()
        tracer.close()
        assert sink.closed == 1
        assert tracer.sinks == []
        tracer.record("after")              # ring-only from here on
        assert [e.category for e in tracer.events] == ["before", "after"]
        assert len(sink.events) == 1

    def test_detach_unknown_sink_is_noop(self):
        tracer = Tracer()
        tracer.detach(_ListSink())


# ---------------------------------------------------------------------------
class TestTracePlumbing:
    def test_grasp_trace_path_kwarg_writes_complete_jsonl(self, tmp_path):
        path = tmp_path / "run.jsonl"
        result = Grasp(skeleton=TaskFarm(worker=lambda x: x + 1),
                       grid=_grid(), trace_path=str(path)).run(range(24))
        assert result.outputs == [x + 1 for x in range(24)]
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        categories = {line["category"] for line in lines}
        assert {"phase.compilation", "phase.programming",
                "phase.calibration.start", "phase.execution.end",
                "adaptation.window"} <= categories
        # One run id throughout, strictly seq-ordered on disk.
        assert len({line["run"] for line in lines}) == 1
        seqs = [line["seq"] for line in lines]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)
        # The file is the complete record: in-memory tracer agrees.
        assert len(lines) == len(result.trace.events)

    def test_grasp_trace_env_var_enables_tracing(self, tmp_path, monkeypatch):
        path = tmp_path / "env.jsonl"
        monkeypatch.setenv("GRASP_TRACE", str(path))
        Grasp(skeleton=TaskFarm(worker=lambda x: x), grid=_grid()).run(
            range(8))
        assert path.exists() and path.read_text().strip()

    def test_config_trace_path_wins_over_env(self, tmp_path, monkeypatch):
        env_path = tmp_path / "env.jsonl"
        cfg_path = tmp_path / "cfg.jsonl"
        monkeypatch.setenv("GRASP_TRACE", str(env_path))
        config = GraspConfig(trace_path=str(cfg_path))
        Grasp(skeleton=TaskFarm(worker=lambda x: x), grid=_grid(),
              config=config).run(range(8))
        assert cfg_path.exists()
        assert not env_path.exists()

    def test_trace_disabled_writes_no_file(self, tmp_path):
        path = tmp_path / "off.jsonl"
        config = GraspConfig(trace=False, trace_path=str(path))
        Grasp(skeleton=TaskFarm(worker=lambda x: x), grid=_grid(),
              config=config).run(range(8))
        assert not path.exists()

    def test_trace_max_events_bounds_memory_not_the_file(self, tmp_path):
        path = tmp_path / "ring.jsonl"
        config = GraspConfig(trace_path=str(path), trace_max_events=5)
        result = Grasp(skeleton=TaskFarm(worker=lambda x: x), grid=_grid(),
                       config=config).run(range(24))
        tracer = result.trace
        assert len(tracer) == 5
        assert tracer.dropped_events > 0
        lines = path.read_text().splitlines()
        assert len(lines) == 5 + tracer.dropped_events

    def test_trace_max_events_validation(self):
        with pytest.raises(ConfigurationError, match="trace_max_events"):
            GraspConfig(trace_max_events=0)

    def test_adaptation_window_events_carry_observed_vs_threshold(self):
        result = Grasp(skeleton=TaskFarm(worker=lambda x: x),
                       grid=_grid(), config=GraspConfig.adaptive()).run(
            range(32))
        windows = result.trace.filter("adaptation.window")
        assert windows
        for event in windows:
            assert {"round", "samples", "observed_min", "threshold",
                    "breached"} <= set(event.data)
            assert event.data["samples"] >= 1
            assert event.data["observed_min"] is not None
            assert event.data["threshold"] is not None

    def test_thread_backend_emits_dispatch_events(self, tmp_path):
        path = tmp_path / "thread.jsonl"
        Grasp(skeleton=TaskFarm(worker=lambda x: x * 2), grid=_grid(),
              backend="thread", trace_path=str(path)).run(range(16))
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        categories = {line["category"] for line in lines}
        assert "dispatch.issue" in categories
        assert "dispatch.resolve" in categories
        resolves = [line for line in lines
                    if line["category"] == "dispatch.resolve"]
        assert all(line["data"]["ok"] for line in resolves)
        assert all(line["data"]["elapsed"] >= 0.0 for line in resolves)

    def test_abandoned_stream_still_flushes_the_sink(self, tmp_path):
        path = tmp_path / "abandoned.jsonl"
        run = Grasp(skeleton=TaskFarm(worker=lambda x: x), grid=_grid(),
                    trace_path=str(path)).as_completed(range(16))
        next(iter(run))
        run.close()
        # The sink was closed (flushed) by the abandonment path; the
        # compilation/calibration events written so far are readable.
        lines = path.read_text().splitlines()
        assert lines
        assert all(json.loads(line)["category"] for line in lines)


class TestTraceEventShape:
    def test_to_dict_round_trips_through_json(self):
        event = TraceEvent(time=1.5, category="a.b", message="m",
                           data={"k": 1}, seq=7, wall=123.0)
        loaded = json.loads(json.dumps(event.to_dict("run-1")))
        assert loaded == {"seq": 7, "run": "run-1", "time": 1.5,
                          "wall": 123.0, "category": "a.b", "message": "m",
                          "data": {"k": 1}}

    def test_legacy_construction_still_works(self):
        # Older call sites (and tests) build events without seq/wall.
        event = TraceEvent(time=0.0, category="a", message="")
        assert event.seq == 0 and event.wall == 0.0
