"""The distributed cluster subsystem, end to end.

Everything here runs against *real* TCP sockets and *real* worker
subprocesses via :class:`repro.cluster.LocalCluster` — including the
flagship fault-tolerance guarantee: SIGKILL a worker mid-farm and the run
still completes, with the dead node filtered from availability and no
result accepted after its death.

Payload functions are module-level (the picklable-payload contract) and
this module is importable on the workers because LocalCluster propagates
the parent's ``sys.path``.
"""

from __future__ import annotations

import json
import signal
import threading
import time
from dataclasses import dataclass

import pytest

from repro import (
    ClusterBackend,
    ClusterError,
    Grasp,
    GraspConfig,
    LocalCluster,
    Pipeline,
    Stage,
    TaskFarm,
)
from repro.cluster.coordinator import WorkerLost
from repro.exceptions import GraspError, GridError
from repro.grid.topology import GridBuilder
from repro.skeletons.base import Task


def _square(x):
    return x * x


def _slow_square(x):
    # Enough wall time that a mid-run SIGKILL reliably catches tasks in
    # flight on the victim.
    time.sleep(0.004)
    return x * x


def _boom(x):
    raise RuntimeError("payload exploded remotely")


def _stage_inc(x):
    return x + 1


def _stage_triple(x):
    return x * 3


def _double_task(task):
    # Backend-level dispatch hands the execute_fn a Task, not a payload.
    return task.payload * 2


def _slow_task(task):
    time.sleep(0.05)
    return task.payload


def _interrupt_task(task):
    # Simulates an operator's Ctrl-C landing inside the payload.
    raise KeyboardInterrupt


@dataclass(frozen=True)
class _ConstCost:
    cost: float

    def __call__(self, _value) -> float:
        return self.cost


def _no_grasp_threads():
    return [t.name for t in threading.enumerate()
            if t.name.startswith("grasp-") and t.is_alive()]


def small_grid(nodes: int = 2):
    return (GridBuilder().homogeneous(nodes=nodes, speed=1.0)
            .named("clustergrid").build(seed=0))


# --------------------------------------------------------------------------
# Smoke: the CI cluster step runs exactly these (boot, run, clean teardown).

class TestClusterSmoke:
    def test_smoke_two_worker_farm_via_registered_name(self):
        # backend="cluster" spawns a LocalCluster matching the topology and
        # owns it: after the run no worker processes or service threads may
        # linger (the repo's grasp-* leak-check convention).
        grid = small_grid(2)
        result = Grasp(skeleton=TaskFarm(worker=_square), grid=grid,
                       config=GraspConfig.adaptive(),
                       backend="cluster").run(inputs=range(12))
        assert result.outputs == [x * x for x in range(12)]
        assert result.total_tasks == 12
        deadline = time.monotonic() + 5.0
        while _no_grasp_threads() and time.monotonic() < deadline:
            time.sleep(0.05)
        assert _no_grasp_threads() == []

    def test_smoke_teardown_reaps_workers_and_sockets(self):
        import socket

        with LocalCluster(workers=2) as cluster:
            host, port = cluster.coordinator.address
            backend = cluster.backend()
            result = Grasp(skeleton=TaskFarm(worker=_square),
                           grid=backend.topology,
                           backend=backend).run(inputs=range(8))
            assert result.outputs == [x * x for x in range(8)]
            backend.close()
        # Every worker subprocess has been reaped ...
        for name, process in cluster.processes.items():
            assert process.poll() is not None, f"worker {name} leaked"
        # ... the coordinator's port no longer accepts connections ...
        with pytest.raises(OSError):
            socket.create_connection((host, port), timeout=0.5).close()
        # ... and no coordinator service threads survive.
        assert _no_grasp_threads() == []


# --------------------------------------------------------------------------
# One shared cluster for the cheap semantic checks (worker subprocesses are
# expensive to boot; the fault tests below spawn their own victims).

@pytest.fixture(scope="module")
def shared_cluster():
    grid = small_grid(3)
    with LocalCluster(workers=list(grid.node_ids)) as cluster:
        yield cluster, grid


@pytest.fixture
def shared_backend(shared_cluster):
    cluster, grid = shared_cluster
    backend = cluster.backend(topology=grid)
    yield backend
    backend.close()


class TestClusterBackendSemantics:
    def test_farm_matches_sequential(self, shared_backend):
        reference = TaskFarm(worker=_square).run_sequential(range(20))
        result = Grasp(skeleton=TaskFarm(worker=_square),
                       grid=shared_backend.topology,
                       config=GraspConfig.adaptive(),
                       backend=shared_backend).run(inputs=range(20))
        assert result.outputs == reference

    def test_chunked_farm_matches_sequential(self, shared_backend):
        config = GraspConfig.adaptive()
        config.execution.chunk_size = 4
        result = Grasp(skeleton=TaskFarm(worker=_square),
                       grid=shared_backend.topology, config=config,
                       backend=shared_backend).run(inputs=range(24))
        assert result.outputs == [x * x for x in range(24)]
        assert result.total_tasks == 24

    def test_pipeline_matches_sequential(self, shared_backend):
        pipeline = Pipeline(stages=[Stage(fn=_stage_inc),
                                    Stage(fn=_stage_triple)])
        reference = pipeline.run_sequential(range(16))
        result = Grasp(skeleton=Pipeline(stages=[Stage(fn=_stage_inc),
                                                 Stage(fn=_stage_triple)]),
                       grid=shared_backend.topology,
                       backend=shared_backend).run(inputs=range(16))
        assert result.outputs == reference

    def test_unpicklable_payload_raises_without_killing_worker(
            self, shared_cluster, shared_backend):
        # A lambda violates the picklable-payload contract: the error must
        # surface at the dispatch site as a ProtocolError — NOT be treated
        # as a send failure that executes a healthy worker for the caller's
        # mistake (regression: a lambda farm used to cascade-kill every
        # worker in the cluster, one lost dispatch at a time).
        from repro.exceptions import ProtocolError

        cluster, grid = shared_cluster
        node = grid.node_ids[0]
        with pytest.raises(ProtocolError, match="pickle"):
            shared_backend.dispatch(
                Task(task_id=0, payload=1), node, lambda t: t.payload,
                master_node=node, at_time=shared_backend.now,
            )
        assert cluster.coordinator.is_live(node)
        # And the worker still serves picklable work afterwards.
        outcome = shared_backend.dispatch(
            Task(task_id=1, payload=5), node, _double_task,
            master_node=node, at_time=shared_backend.now,
        ).outcome()
        assert outcome.output == 10

    def test_payload_exception_propagates(self, shared_backend):
        with pytest.raises(RuntimeError, match="payload exploded remotely"):
            Grasp(skeleton=TaskFarm(worker=_boom),
                  grid=shared_backend.topology,
                  backend=shared_backend).run(inputs=range(4))

    def test_heartbeat_load_reaches_observe_load(self):
        # The full load-plumbing path: a Heartbeat's load value must come
        # out of the backend's observe_load (clamped into [0, 1)).  Driven
        # over a raw socket so the injected load is known, not whatever
        # this host's loadavg happens to be.
        import socket as socketlib

        from repro.cluster import (
            ClusterCoordinator,
            FrameDecoder,
            Heartbeat,
            Hello,
            encode,
        )

        with ClusterCoordinator() as coordinator:
            sock = socketlib.create_connection(coordinator.address)
            try:
                sock.sendall(encode(Hello(node_id="loady/n0", host="t",
                                          pid=1, cpus=1)))
                decoder = FrameDecoder()
                while not decoder.feed(sock.recv(65536)):
                    pass        # the WELCOME
                sock.sendall(encode(Heartbeat(node_id="loady/n0", load=0.5)))
                deadline = time.monotonic() + 5.0
                while coordinator.node_load("loady/n0") != 0.5 \
                        and time.monotonic() < deadline:
                    time.sleep(0.01)
                assert coordinator.node_load("loady/n0") == 0.5
                backend = ClusterBackend(coordinator=coordinator)
                assert backend.observe_load("loady/n0") == 0.5
                backend.close()
            finally:
                sock.close()

    def test_worker_info_describes_agent(self, shared_cluster):
        cluster, grid = shared_cluster
        info = cluster.coordinator.worker_info(grid.node_ids[0])
        assert info is not None
        assert info.node_id == grid.node_ids[0]
        assert info.pid > 0
        assert info.cpus >= 1

    def test_closed_backend_rejects_dispatch(self, shared_cluster):
        cluster, grid = shared_cluster
        backend = cluster.backend(topology=grid)
        backend.close()
        with pytest.raises(GraspError):
            backend.dispatch(
                Task(task_id=0, payload=1), grid.node_ids[0], _double_task,
                master_node=grid.node_ids[0], at_time=backend.now,
            )
        # Closing a non-owned backend leaves the shared cluster running.
        assert cluster.coordinator.live_nodes()

    def test_backend_without_topology_adopts_live_workers(self, shared_cluster):
        cluster, grid = shared_cluster
        backend = ClusterBackend(coordinator=cluster.coordinator)
        try:
            assert set(backend.topology.node_ids) == set(grid.node_ids)
            assert set(backend.available_nodes(backend.now)) == \
                set(grid.node_ids)
        finally:
            backend.close()


# --------------------------------------------------------------------------
# The flagship guarantee: kill -9 a worker mid-farm.

class TestClusterFaultTolerance:
    def test_sigkill_mid_farm_completes_and_filters_dead_node(self):
        names = [f"fault/n{i}" for i in range(3)]
        with LocalCluster(workers=names) as cluster:
            backend = cluster.backend()
            # pool[0] hosts the master; kill a plain worker.
            victim = names[-1]
            run = Grasp(skeleton=TaskFarm(worker=_slow_square),
                        grid=backend.topology, config=GraspConfig.adaptive(),
                        backend=backend).as_completed(inputs=range(48))
            death_at = None
            for count, _ in enumerate(run):
                if count == 5:
                    cluster.kill_worker(victim, sig=signal.SIGKILL)
                    death_at = backend.now
            result = run.result
            assert death_at is not None

            # The run completed, correctly, despite the murder.
            assert result.outputs == [x * x for x in range(48)]
            assert result.total_tasks == 48

            # The dead node is filtered from the availability set ...
            assert victim not in backend.available_nodes(backend.now)
            assert backend.is_available(victim) is False
            # ... but still *exists* (it may rejoin).
            assert backend.has_node(victim)

            # No result was accepted from the victim after its death
            # (in-flight work resolved as lost and was re-enqueued; the
            # margin covers frames already queued at the coordinator).
            for record in result.execution.results:
                if record.node_id == victim and not record.during_calibration:
                    assert record.finished <= death_at + 0.5
                    assert record.submitted <= death_at + 0.5
            backend.close()

    def test_killed_worker_tasks_resolve_as_lost(self):
        with LocalCluster(workers=["lost/n0"]) as cluster:
            backend = cluster.backend()
            handle = backend.dispatch(
                Task(task_id=0, payload=1), "lost/n0", _slow_task,
                master_node="lost/n0", at_time=backend.now,
            )
            cluster.kill_worker("lost/n0")
            outcome = handle.outcome()
            assert outcome.lost is True
            assert outcome.output is None
            # Dead at dispatch: subsequent sends are lost in transit too.
            again = backend.dispatch(
                Task(task_id=1, payload=2), "lost/n0", _slow_task,
                master_node="lost/n0", at_time=backend.now,
            ).outcome()
            assert again.lost is True
            backend.close()

    def test_keyboard_interrupt_in_payload_is_a_lost_task_not_a_result(self):
        # An exit signal raised mid-payload must kill the *agent* (task
        # lost, node dead) — shipping KeyboardInterrupt back as a Result
        # would crash the driver's whole run.
        with LocalCluster(workers=["intr/n0"]) as cluster:
            backend = cluster.backend()
            outcome = backend.dispatch(
                Task(task_id=0, payload=1), "intr/n0", _interrupt_task,
                master_node="intr/n0", at_time=backend.now,
            ).outcome()
            assert outcome.lost is True
            assert outcome.output is None
            deadline = time.monotonic() + 5.0
            while cluster.coordinator.is_live("intr/n0") \
                    and time.monotonic() < deadline:
                time.sleep(0.02)
            assert not cluster.coordinator.is_live("intr/n0")
            backend.close()

    def test_rejoining_worker_reenters_availability(self):
        names = ["rejoin/n0", "rejoin/n1"]
        with LocalCluster(workers=names) as cluster:
            backend = cluster.backend()
            victim = names[1]
            cluster.kill_worker(victim)
            deadline = time.monotonic() + 10.0
            while cluster.coordinator.is_live(victim) \
                    and time.monotonic() < deadline:
                time.sleep(0.02)
            assert victim not in backend.available_nodes(backend.now)

            cluster.start_worker(victim)
            assert victim in backend.available_nodes(backend.now)
            # And it actually serves work again.
            outcome = backend.dispatch(
                Task(task_id=7, payload=6), victim, _double_task,
                master_node=names[0], at_time=backend.now,
            ).outcome()
            assert outcome.output == 12
            assert outcome.lost is False
            backend.close()

    def test_chain_on_killed_worker_raises_instead_of_losing_items(self):
        from repro.backends.base import ChainStage

        names = ["chain/n0"]
        with LocalCluster(workers=names) as cluster:
            backend = cluster.backend()
            cluster.kill_worker(names[0])
            deadline = time.monotonic() + 10.0
            while cluster.coordinator.is_live(names[0]) \
                    and time.monotonic() < deadline:
                time.sleep(0.02)

            def pick(_free_at):
                return names[0]

            handle = backend.dispatch_chain(
                Task(task_id=0, payload=1),
                [ChainStage(pick=pick, cost=_ConstCost(1.0),
                            apply=_stage_inc)],
                master_node=names[0], at_time=backend.now,
            )
            with pytest.raises(GridError, match="died\\s+mid-pipeline-stage"):
                handle.outcome()
            backend.close()


class TestCoordinatorLiveness:
    def test_heartbeat_timeout_reaps_mute_worker_and_its_reader(self):
        # A worker whose connection stays open but whose heartbeats stop
        # (hung process, SIGSTOP) must be declared dead — and the death
        # must wake its reader thread (shutdown before close; a bare
        # close() leaves a thread blocked in recv() forever).
        import socket as socketlib

        from repro.cluster import ClusterCoordinator, FrameDecoder, Hello, encode

        def reader_threads():
            return {t for t in threading.enumerate()
                    if t.name.startswith("grasp-cluster-reader")
                    and t.is_alive()}

        # Other fixtures (the module-scoped shared cluster) own readers too;
        # only threads created by *this* coordinator count.
        preexisting = reader_threads()
        with ClusterCoordinator(heartbeat_timeout=0.4) as coordinator:
            sock = socketlib.create_connection(coordinator.address)
            try:
                sock.sendall(encode(Hello(node_id="mute/n0", host="t",
                                          pid=1, cpus=1)))
                decoder = FrameDecoder()
                while not decoder.feed(sock.recv(65536)):
                    pass        # the WELCOME
                # WELCOME is sent *before* the worker is published (so a
                # racing dispatch can never precede it); poll for liveness.
                deadline = time.monotonic() + 5.0
                while not coordinator.is_live("mute/n0") \
                        and time.monotonic() < deadline:
                    time.sleep(0.01)
                assert coordinator.is_live("mute/n0")

                deadline = time.monotonic() + 5.0
                while coordinator.is_live("mute/n0") \
                        and time.monotonic() < deadline:
                    time.sleep(0.05)
                assert not coordinator.is_live("mute/n0")

                # The dead connection's reader thread exited (it was woken,
                # not stranded in recv).
                deadline = time.monotonic() + 5.0
                while time.monotonic() < deadline:
                    readers = reader_threads() - preexisting
                    if not readers:
                        break
                    time.sleep(0.05)
                assert readers == set()
            finally:
                sock.close()
        # close() above returned with no threads of its own left behind.
        assert reader_threads() - preexisting == set()

    def test_silent_connection_without_hello_is_reaped(self):
        # A client that connects and never registers (crashed worker, port
        # scanner) must not pin a socket and reader thread forever.
        import socket as socketlib

        from repro.cluster import ClusterCoordinator

        with ClusterCoordinator(heartbeat_timeout=0.4) as coordinator:
            sock = socketlib.create_connection(coordinator.address)
            try:
                sock.settimeout(5.0)
                # The coordinator shuts the silent connection down within
                # the handshake deadline: recv observes EOF.
                assert sock.recv(65536) == b""
            finally:
                sock.close()

    def test_heartbeats_before_hello_do_not_keep_a_connection_alive(self):
        # A client sending valid frames without ever registering must not
        # pin the socket by refreshing its own liveness: anything but
        # HELLO from an anonymous connection is a protocol violation.
        import socket as socketlib

        from repro.cluster import ClusterCoordinator, Heartbeat, encode

        with ClusterCoordinator(heartbeat_timeout=0.4) as coordinator:
            sock = socketlib.create_connection(coordinator.address)
            try:
                sock.settimeout(5.0)
                sock.sendall(encode(Heartbeat(node_id="anon/n0", load=0.1)))
                # The coordinator drops the connection (protocol error or
                # handshake deadline): recv observes EOF.
                while True:
                    if sock.recv(65536) == b"":
                        break
            finally:
                sock.close()

    def test_slow_transfer_counts_as_liveness(self):
        # A worker dribbling a large Result over a slow link may have its
        # heartbeats starved behind the in-progress send; arriving bytes
        # must keep it alive past the heartbeat timeout.
        import socket as socketlib

        from repro.cluster import ClusterCoordinator, FrameDecoder, Hello, encode
        from repro.cluster.protocol import Goodbye as _Goodbye
        from repro.cluster.protocol import encode as _encode

        with ClusterCoordinator(heartbeat_timeout=0.4) as coordinator:
            sock = socketlib.create_connection(coordinator.address)
            try:
                sock.sendall(encode(Hello(node_id="slow/n0", host="t",
                                          pid=1, cpus=1)))
                decoder = FrameDecoder()
                while not decoder.feed(sock.recv(65536)):
                    pass        # the WELCOME
                deadline = time.monotonic() + 5.0
                while not coordinator.is_live("slow/n0") \
                        and time.monotonic() < deadline:
                    time.sleep(0.01)
                # Dribble one frame byte-by-byte for 3x the heartbeat
                # timeout, never sending an actual heartbeat.
                frame = _encode(_Goodbye(node_id="slow/n0", reason="x" * 64))
                until = time.monotonic() + 1.2
                for byte in frame[:-1]:
                    if time.monotonic() >= until:
                        break
                    assert coordinator.is_live("slow/n0"), (
                        "mid-transfer worker was declared dead"
                    )
                    sock.sendall(bytes([byte]))
                    time.sleep(1.2 / len(frame))
            finally:
                sock.close()


class TestScriptMainRoundTrip:
    def test_script_defined_class_survives_the_result_direction(self, tmp_path):
        # Workers adopt a plain-script driver as __grasp_main__, so a class
        # defined in the script pickles as __grasp_main__.X in *results*;
        # the driver must resolve that (regression: it couldn't, so a farm
        # returning a script-defined dataclass cascade-killed every healthy
        # worker via ProtocolError at the coordinator's decoder).
        import os
        import subprocess
        import sys

        script = tmp_path / "driver.py"
        script.write_text(
            "from dataclasses import dataclass\n"
            "from repro import Grasp, GridBuilder, TaskFarm\n"
            "\n"
            "@dataclass\n"
            "class Boxed:\n"
            "    value: int\n"
            "\n"
            "def work(x):\n"
            "    return Boxed(x * 2)\n"
            "\n"
            "if __name__ == '__main__':\n"
            "    grid = (GridBuilder().homogeneous(nodes=2)\n"
            "            .named('scripted').build(seed=0))\n"
            "    result = Grasp(skeleton=TaskFarm(worker=work), grid=grid,\n"
            "                   backend='cluster').run(inputs=range(6))\n"
            "    assert [b.value for b in result.outputs] == \\\n"
            "        [x * 2 for x in range(6)], result.outputs\n"
            "    print('ROUNDTRIP-OK')\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(p for p in sys.path if p)
        done = subprocess.run([sys.executable, str(script)], env=env,
                              capture_output=True, text=True, timeout=240)
        assert done.returncode == 0, done.stderr
        assert "ROUNDTRIP-OK" in done.stdout


class TestSupersede:
    def test_same_name_reregistration_supersedes_live_connection(self):
        # A second agent claiming an already-live node id wins; the stale
        # connection is declared dead (its socket closes) rather than
        # lingering as a welcomed-but-never-serviced orphan.
        import socket as socketlib

        from repro.cluster import ClusterCoordinator, FrameDecoder, Hello, encode

        def register(coordinator, node_id):
            sock = socketlib.create_connection(coordinator.address)
            sock.sendall(encode(Hello(node_id=node_id, host="t", pid=1,
                                      cpus=1)))
            decoder = FrameDecoder()
            while not decoder.feed(sock.recv(65536)):
                pass            # the WELCOME
            return sock

        with ClusterCoordinator() as coordinator:
            first = register(coordinator, "dup/n0")
            second = register(coordinator, "dup/n0")
            try:
                deadline = time.monotonic() + 5.0
                while time.monotonic() < deadline:
                    # The superseded connection's socket is shut down by
                    # the coordinator: its recv returns EOF.
                    first.settimeout(0.2)
                    try:
                        if first.recv(65536) == b"":
                            break
                    except socketlib.timeout:
                        continue
                    except OSError:
                        break
                else:
                    pytest.fail("stale connection was never torn down")
                assert coordinator.is_live("dup/n0")
            finally:
                first.close()
                second.close()


# --------------------------------------------------------------------------
# The dispatch hot path: payload registry, binary results, piggybacked
# heartbeats, Nagle suppression.

def _register_fake_worker(coordinator, node_id):
    """Raw-socket stand-in for a worker agent: registered, decodable."""
    import socket as socketlib

    from repro.cluster import FrameDecoder, Hello, encode

    sock = socketlib.create_connection(coordinator.address)
    sock.sendall(encode(Hello(node_id=node_id, host="t", pid=1, cpus=1)))
    decoder = FrameDecoder()
    while not decoder.feed(sock.recv(65536)):
        pass                    # the WELCOME
    deadline = time.monotonic() + 5.0
    while not coordinator.is_live(node_id) and time.monotonic() < deadline:
        time.sleep(0.01)
    assert coordinator.is_live(node_id)
    return sock, decoder


def _drain_messages(sock, decoder, count, timeout=5.0):
    messages = []
    sock.settimeout(timeout)
    while len(messages) < count:
        messages.extend(decoder.feed(sock.recv(65536)))
    return messages


class TestDispatchHotPath:
    def test_put_payload_ships_once_per_connection(self):
        # Two submit_refs naming the same payload: the wire carries ONE
        # PUT_PAYLOAD then two DISPATCH_REFs, in that order — the shared
        # blob never repeats on a connection.
        from repro.cluster import ClusterCoordinator, DispatchRef, PutPayload
        from repro.cluster.protocol import dumps_payload

        with ClusterCoordinator() as coordinator:
            sock, decoder = _register_fake_worker(coordinator, "reg/n0")
            try:
                blob = dumps_payload((_double_task, True))
                payload_id = coordinator.register_payload(blob)
                coordinator.submit_ref("reg/n0", "task", payload_id,
                                       Task(task_id=0, payload=1))
                coordinator.submit_ref("reg/n0", "task", payload_id,
                                       Task(task_id=1, payload=2))
                first, second, third = _drain_messages(sock, decoder, 3)
                assert isinstance(first, PutPayload)
                assert first.payload_id == payload_id
                assert first.blob == blob
                assert isinstance(second, DispatchRef)
                assert isinstance(third, DispatchRef)
                assert {second.args.payload, third.args.payload} == {1, 2}
            finally:
                sock.close()

    def test_rejoin_gets_the_payload_reshipped(self):
        # A reconnecting agent is a fresh connection with an empty store:
        # the first reference after the rejoin must re-ship the blob.
        from repro.cluster import ClusterCoordinator, PutPayload
        from repro.cluster.protocol import dumps_payload

        with ClusterCoordinator() as coordinator:
            sock, decoder = _register_fake_worker(coordinator, "reship/n0")
            payload_id = coordinator.register_payload(
                dumps_payload((_double_task, True)))
            coordinator.submit_ref("reship/n0", "task", payload_id,
                                   Task(task_id=0, payload=1))
            put, _ref = _drain_messages(sock, decoder, 2)
            assert isinstance(put, PutPayload)
            sock.close()
            deadline = time.monotonic() + 5.0
            while coordinator.is_live("reship/n0") \
                    and time.monotonic() < deadline:
                time.sleep(0.02)

            sock2, decoder2 = _register_fake_worker(coordinator, "reship/n0")
            try:
                coordinator.submit_ref("reship/n0", "task", payload_id,
                                       Task(task_id=1, payload=2))
                put2, _ref2 = _drain_messages(sock2, decoder2, 2)
                assert isinstance(put2, PutPayload)
                assert put2.payload_id == payload_id
            finally:
                sock2.close()

    def test_submit_ref_with_unregistered_payload_raises(self):
        from repro.cluster import ClusterCoordinator

        with ClusterCoordinator() as coordinator:
            sock, _decoder = _register_fake_worker(coordinator, "unreg/n0")
            try:
                with pytest.raises(ClusterError, match="not registered"):
                    coordinator.submit_ref("unreg/n0", "task", 424242, None)
            finally:
                sock.close()

    def test_unpicklable_ref_args_raise_without_killing_worker(self):
        # The registry path keeps the legacy guarantee: per-task args that
        # do not pickle surface at the caller, the worker stays live.
        from repro.cluster import ClusterCoordinator
        from repro.cluster.protocol import dumps_payload
        from repro.exceptions import ProtocolError

        with ClusterCoordinator() as coordinator:
            sock, _decoder = _register_fake_worker(coordinator, "args/n0")
            try:
                payload_id = coordinator.register_payload(
                    dumps_payload((_double_task, True)))
                with pytest.raises(ProtocolError, match="pickle"):
                    coordinator.submit_ref("args/n0", "task", payload_id,
                                           lambda t: t)
                assert coordinator.is_live("args/n0")
            finally:
                sock.close()

    def test_result_load_piggybacks_onto_node_load(self):
        # A binary Result carrying load >= 0 updates the coordinator's
        # last-known load; the -1.0 sentinel leaves it untouched.
        from repro.cluster import ClusterCoordinator, Result, encode

        with ClusterCoordinator() as coordinator:
            sock, _decoder = _register_fake_worker(coordinator, "piggy/n0")
            try:
                sock.sendall(encode(Result(request_id=999, ok=True,
                                           value=(None, 0.0), load=0.25)))
                deadline = time.monotonic() + 5.0
                while coordinator.node_load("piggy/n0") != 0.25 \
                        and time.monotonic() < deadline:
                    time.sleep(0.01)
                assert coordinator.node_load("piggy/n0") == 0.25
                sock.sendall(encode(Result(request_id=998, ok=True,
                                           value=(None, 0.0), load=-1.0)))
                time.sleep(0.2)
                assert coordinator.node_load("piggy/n0") == 0.25
            finally:
                sock.close()

    def test_active_worker_suppresses_heartbeat_beacons(self):
        # While results flow, the agent sends no separate heartbeats — so
        # with beacons suppressed NO bytes arrive and the coordinator's
        # last-beat stamp freezes; once the suppression window passes, the
        # beacons resume and the stamp moves again.
        from repro.cluster import ClusterCoordinator
        from repro.cluster.worker import WorkerAgent

        with ClusterCoordinator(heartbeat_timeout=30.0) as coordinator:
            host, port = coordinator.address
            agent = WorkerAgent(host, port, "sup/n0",
                                heartbeat_interval=0.1)
            beats = None
            try:
                agent._handshake()
                deadline = time.monotonic() + 5.0
                while not coordinator.is_live("sup/n0") \
                        and time.monotonic() < deadline:
                    time.sleep(0.01)
                conn = coordinator._workers["sup/n0"]
                # Simulate steady result traffic: the piggyback window
                # stays open, so the heartbeat loop must stay mute.
                agent._last_result = time.monotonic() + 60.0
                beats = threading.Thread(target=agent._heartbeat_loop,
                                         daemon=True)
                beats.start()
                stamp = conn.last_beat
                time.sleep(0.5)
                assert conn.last_beat == stamp, (
                    "suppressed heartbeat still sent bytes"
                )
                # Traffic stops: beacons resume within an interval or two.
                agent._last_result = -float("inf")
                deadline = time.monotonic() + 5.0
                while conn.last_beat == stamp \
                        and time.monotonic() < deadline:
                    time.sleep(0.02)
                assert conn.last_beat > stamp
            finally:
                agent._stop.set()
                agent._sock.close()
                if beats is not None:
                    beats.join(timeout=5.0)

    def test_tcp_nodelay_on_both_ends(self):
        # Small RESULT/HEARTBEAT frames must not be Nagle-delayed behind
        # each other: both the accepted coordinator socket and the agent's
        # connecting socket disable Nagle.
        import socket as socketlib

        from repro.cluster import ClusterCoordinator
        from repro.cluster.worker import WorkerAgent

        with ClusterCoordinator() as coordinator:
            sock, _decoder = _register_fake_worker(coordinator, "nagle/n0")
            try:
                conn = coordinator._workers["nagle/n0"]
                assert conn.sock.getsockopt(socketlib.IPPROTO_TCP,
                                            socketlib.TCP_NODELAY) != 0
                host, port = coordinator.address
                agent = WorkerAgent(host, port, "nagle/n1")
                try:
                    assert agent._sock.getsockopt(
                        socketlib.IPPROTO_TCP, socketlib.TCP_NODELAY) != 0
                finally:
                    agent._sock.close()
            finally:
                sock.close()

    def test_legacy_by_value_mode_matches_registry_mode(self, shared_cluster):
        # payload_registry=False reverts to one full payload pickle per
        # DISPATCH; results must be identical to the hot path (this is the
        # comparison the dispatch-overhead benchmark builds on).
        cluster, grid = shared_cluster
        legacy = ClusterBackend(coordinator=cluster.coordinator,
                                topology=grid, payload_registry=False)
        try:
            result = Grasp(skeleton=TaskFarm(worker=_square), grid=grid,
                           config=GraspConfig.adaptive(),
                           backend=legacy).run(inputs=range(20))
            assert result.outputs == [x * x for x in range(20)]
        finally:
            legacy.close()

    def test_worker_speaking_old_protocol_is_rejected_cleanly(self):
        # An agent announcing a foreign message protocol in HELLO gets a
        # clean rejection (its connection is dropped), never garbage.
        import socket as socketlib

        from repro.cluster import ClusterCoordinator, Hello, encode

        with ClusterCoordinator() as coordinator:
            sock = socketlib.create_connection(coordinator.address)
            try:
                sock.sendall(encode(Hello(node_id="old/n0", host="t", pid=1,
                                          cpus=1, protocol=1)))
                sock.settimeout(5.0)
                while True:
                    if sock.recv(65536) == b"":
                        break       # dropped, not welcomed
                assert not coordinator.is_live("old/n0")
            finally:
                sock.close()


# --------------------------------------------------------------------------
# Construction-time validation.

class TestClusterConstruction:
    def test_backend_needs_a_coordinator(self):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError, match="coordinator"):
            ClusterBackend()

    def test_local_cluster_rejects_bad_worker_specs(self):
        with pytest.raises(ClusterError):
            LocalCluster(workers=0)
        with pytest.raises(ClusterError):
            LocalCluster(workers=[])
        with pytest.raises(ClusterError):
            LocalCluster(workers=["a", "a"])

    def test_submit_to_unknown_node_raises_worker_lost(self):
        from repro.cluster import ClusterCoordinator

        with ClusterCoordinator() as coordinator:
            with pytest.raises(WorkerLost):
                coordinator.submit("ghost/n0", "task", (None, None, True))

    def test_registration_timeout_names_missing_workers(self):
        from repro.cluster import ClusterCoordinator

        with ClusterCoordinator() as coordinator:
            with pytest.raises(ClusterError, match="ghost/n1"):
                coordinator.wait_for_workers(["ghost/n1"], timeout=0.1)


# --------------------------------------------------------------------------
# The run-event stream: a fault-injected run must leave a readable JSONL
# forensic record with death → re-enqueue → rejoin in causal order.

class TestClusterTraceStream:
    def _await_liveness(self, cluster, node, live, deadline=10.0):
        limit = time.monotonic() + deadline
        while cluster.coordinator.is_live(node) is not live \
                and time.monotonic() < limit:
            time.sleep(0.02)
        return cluster.coordinator.is_live(node) is live

    def test_sigkill_run_traces_death_requeue_and_rejoin(self, tmp_path):
        trace_path = tmp_path / "cluster-run.jsonl"
        names = ["trace/n0", "trace/n1"]
        with LocalCluster(workers=names) as cluster:
            backend = cluster.backend()
            # pool[0] hosts the master; kill the plain worker.
            victim = names[-1]
            run = Grasp(skeleton=TaskFarm(worker=_slow_square),
                        grid=backend.topology,
                        config=GraspConfig.adaptive(),
                        backend=backend,
                        trace_path=str(trace_path)).as_completed(
                inputs=range(64))
            restarted = rejoined = False
            for count, _ in enumerate(run):
                if count == 5:
                    cluster.kill_worker(victim, sig=signal.SIGKILL)
                elif count == 20 and not restarted:
                    # By now the death was detected and the in-flight
                    # tasks were re-enqueued; bring the victim back.
                    assert self._await_liveness(cluster, victim, live=False)
                    cluster.start_worker(victim)
                    restarted = True
                elif count == 40 and not rejoined:
                    rejoined = self._await_liveness(cluster, victim,
                                                    live=True)
            result = run.result
            assert restarted and rejoined
            assert result.outputs == [x * x for x in range(64)]
            backend.close()

        events = [json.loads(line)
                  for line in trace_path.read_text().splitlines()]
        categories = {event["category"] for event in events}
        assert {"cluster.death", "dispatch.issue", "dispatch.lost",
                "task.requeue", "cluster.rejoin"} <= categories

        # JSONL lines land in seq order, one run id throughout.
        seqs = [event["seq"] for event in events]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)
        assert len({event["run"] for event in events}) == 1

        # Causal ordering: the death precedes the re-enqueue of the
        # tasks it stranded, which precedes the victim's rejoin.
        def first_seq(category):
            return next(event["seq"] for event in events
                        if event["category"] == category)

        death = first_seq("cluster.death")
        lost = first_seq("dispatch.lost")
        requeue = first_seq("task.requeue")
        rejoin = first_seq("cluster.rejoin")
        assert death < lost < requeue < rejoin

        # The death event names its victim and reason; the requeue
        # carries how many tasks went back on the queue.
        death_event = next(e for e in events
                           if e["category"] == "cluster.death")
        assert death_event["data"]["node"] == victim
        assert death_event["data"]["reason"]
        requeue_event = next(e for e in events
                             if e["category"] == "task.requeue")
        assert requeue_event["data"]["count"] >= 1

        # And the report CLI renders the whole story.
        from repro.trace import load_events, main, summarize

        assert main(["report", str(trace_path)]) == 0
        summary = summarize(load_events(str(trace_path)))
        assert [d["node"] for d in summary["cluster"]["deaths"]] == [victim]
        assert summary["cluster"]["rejoins"] >= 1
        assert summary["adaptation"]["requeued_tasks"] >= 1
        assert summary["nodes"][victim]["lost"] >= 1
