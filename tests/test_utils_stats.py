"""Tests for the statistics primitives used by calibration and analysis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.stats import (
    coefficient_of_variation,
    multivariate_linear_regression,
    normalise,
    percentile,
    summarise,
    univariate_linear_regression,
    weighted_mean,
)


class TestSummarise:
    def test_basic_summary(self):
        s = summarise([1.0, 2.0, 3.0, 4.0])
        assert s.count == 4
        assert s.mean == pytest.approx(2.5)
        assert s.minimum == 1.0
        assert s.maximum == 4.0
        assert s.median == pytest.approx(2.5)
        assert s.spread == pytest.approx(3.0)

    def test_single_element(self):
        s = summarise([7.0])
        assert s.std == 0.0
        assert s.spread == 0.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            summarise([])


class TestWeightedMean:
    def test_uniform_weights_equal_mean(self):
        assert weighted_mean([1, 2, 3], [1, 1, 1]) == pytest.approx(2.0)

    def test_weights_shift_mean(self):
        assert weighted_mean([0.0, 10.0], [3.0, 1.0]) == pytest.approx(2.5)

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            weighted_mean([1, 2], [1])

    def test_zero_weights_raise(self):
        with pytest.raises(ValueError):
            weighted_mean([1, 2], [0, 0])


class TestCoefficientOfVariation:
    def test_constant_sample_is_zero(self):
        assert coefficient_of_variation([5, 5, 5]) == 0.0

    def test_single_element_is_zero(self):
        assert coefficient_of_variation([3]) == 0.0

    def test_known_value(self):
        values = [1.0, 3.0]
        expected = np.std(values) / np.mean(values)
        assert coefficient_of_variation(values) == pytest.approx(expected)


class TestNormalise:
    def test_range_maps_to_unit_interval(self):
        out = normalise([2.0, 4.0, 6.0])
        assert out[0] == 0.0
        assert out[-1] == 1.0

    def test_constant_input_maps_to_zeros(self):
        out = normalise([3.0, 3.0])
        assert np.all(out == 0.0)

    def test_empty_input(self):
        assert normalise([]).size == 0


class TestUnivariateRegression:
    def test_recovers_exact_line(self):
        x = np.array([0.0, 1.0, 2.0, 3.0])
        y = 2.0 * x + 1.0
        fit = univariate_linear_regression(x, y)
        assert fit.slope == pytest.approx(2.0)
        assert fit.intercept == pytest.approx(1.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_predict(self):
        fit = univariate_linear_regression([0, 1, 2], [1, 3, 5])
        assert fit.predict(10.0) == pytest.approx(21.0)

    def test_constant_predictor_falls_back_to_mean(self):
        fit = univariate_linear_regression([2, 2, 2], [1, 2, 3])
        assert fit.slope == 0.0
        assert fit.intercept == pytest.approx(2.0)

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            univariate_linear_regression([1, 2], [1])

    def test_single_point_raises(self):
        with pytest.raises(ValueError):
            univariate_linear_regression([1], [1])

    def test_noisy_fit_r_squared_below_one(self):
        rng = np.random.default_rng(0)
        x = np.linspace(0, 1, 50)
        y = 3 * x + rng.normal(0, 0.5, size=50)
        fit = univariate_linear_regression(x, y)
        assert 0.0 < fit.r_squared < 1.0
        assert fit.slope == pytest.approx(3.0, abs=0.8)


class TestMultivariateRegression:
    def test_recovers_exact_plane(self):
        rng = np.random.default_rng(1)
        x = rng.random((40, 2))
        y = 1.5 + 2.0 * x[:, 0] - 3.0 * x[:, 1]
        fit = multivariate_linear_regression(x, y)
        assert fit.intercept == pytest.approx(1.5, abs=1e-9)
        assert fit.coefficients[0] == pytest.approx(2.0, abs=1e-9)
        assert fit.coefficients[1] == pytest.approx(-3.0, abs=1e-9)
        assert fit.r_squared == pytest.approx(1.0)

    def test_predict_shape_check(self):
        fit = multivariate_linear_regression([[0, 0], [1, 1], [2, 0]], [0, 1, 2])
        with pytest.raises(ValueError):
            fit.predict([1.0])

    def test_predict_value(self):
        x = [[0.0], [1.0], [2.0]]
        y = [1.0, 2.0, 3.0]
        fit = multivariate_linear_regression(x, y)
        assert fit.predict([4.0]) == pytest.approx(5.0)

    def test_collinear_features_do_not_crash(self):
        x = [[1.0, 2.0], [2.0, 4.0], [3.0, 6.0], [4.0, 8.0]]
        y = [1.0, 2.0, 3.0, 4.0]
        fit = multivariate_linear_regression(x, y)
        assert fit.r_squared == pytest.approx(1.0, abs=1e-9)

    def test_one_dimensional_features_raise(self):
        with pytest.raises(ValueError):
            multivariate_linear_regression([1.0, 2.0], [1.0, 2.0])

    def test_row_mismatch_raises(self):
        with pytest.raises(ValueError):
            multivariate_linear_regression([[1.0], [2.0]], [1.0])

    def test_too_few_observations_raise(self):
        with pytest.raises(ValueError):
            multivariate_linear_regression([[1.0]], [1.0])


class TestPercentile:
    def test_matches_numpy_linear_interpolation(self):
        values = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]
        for q in (0, 10, 25, 50, 75, 90, 95, 99, 100):
            assert percentile(values, q) == pytest.approx(
                float(np.percentile(values, q)))

    def test_median_of_even_sample_interpolates(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 50) == pytest.approx(2.5)

    def test_single_value_is_every_percentile(self):
        for q in (0, 50, 100):
            assert percentile([7.25], q) == 7.25

    def test_order_independent(self):
        assert percentile([5.0, 1.0, 3.0], 95) == percentile(
            [1.0, 3.0, 5.0], 95)

    def test_accepts_any_iterable(self):
        assert percentile((x for x in range(11)), 50) == pytest.approx(5.0)

    def test_empty_sample_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_q_raises(self):
        with pytest.raises(ValueError):
            percentile([1.0], -0.1)
        with pytest.raises(ValueError):
            percentile([1.0], 100.1)
