"""Tests for tracing and validation helpers."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.utils.tracing import TraceEvent, Tracer
from repro.utils.validation import (
    check_in_range,
    check_non_negative,
    check_not_empty,
    check_positive,
    check_probability,
    check_type,
)


class TestTracer:
    def test_records_events_with_clock(self):
        clock = {"t": 0.0}
        tracer = Tracer(clock=lambda: clock["t"])
        tracer.record("phase.start", "begin", detail=1)
        clock["t"] = 2.5
        tracer.record("phase.end", "done")
        assert len(tracer) == 2
        assert tracer.events[0].time == 0.0
        assert tracer.events[1].time == 2.5
        assert tracer.events[0].data == {"detail": 1}

    def test_disabled_tracer_is_noop(self):
        tracer = Tracer(enabled=False)
        tracer.record("x", "y")
        assert len(tracer) == 0

    def test_filter_matches_prefix_and_exact(self):
        tracer = Tracer()
        tracer.record("phase.calibration.start")
        tracer.record("phase.calibration.end")
        tracer.record("phase.execution")
        tracer.record("phasex.other")
        assert len(tracer.filter("phase.calibration")) == 2
        assert len(tracer.filter("phase")) == 3
        assert len(tracer.filter("phase.execution")) == 1

    def test_categories_in_first_appearance_order(self):
        tracer = Tracer()
        tracer.record("b")
        tracer.record("a")
        tracer.record("b")
        assert tracer.categories() == ["b", "a"]

    def test_clear(self):
        tracer = Tracer()
        tracer.record("x")
        tracer.clear()
        assert len(tracer) == 0

    def test_bind_clock(self):
        tracer = Tracer()
        tracer.bind_clock(lambda: 42.0)
        tracer.record("x")
        assert tracer.events[0].time == 42.0

    def test_iteration(self):
        tracer = Tracer()
        tracer.record("x")
        tracer.record("y")
        assert [e.category for e in tracer] == ["x", "y"]


class TestTraceEvent:
    def test_matches_nested(self):
        event = TraceEvent(time=0.0, category="a.b.c", message="")
        assert event.matches("a.b")
        assert event.matches("a.b.c")
        assert not event.matches("a.bc")


class TestValidation:
    def test_check_positive_accepts_and_returns(self):
        assert check_positive(3, "x") == 3

    @pytest.mark.parametrize("value", [0, -1, -0.5])
    def test_check_positive_rejects(self, value):
        with pytest.raises(ConfigurationError, match="x"):
            check_positive(value, "x")

    def test_check_non_negative(self):
        assert check_non_negative(0, "x") == 0
        with pytest.raises(ConfigurationError):
            check_non_negative(-1e-9, "x")

    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_check_probability_accepts(self, value):
        assert check_probability(value, "p") == value

    @pytest.mark.parametrize("value", [-0.1, 1.1])
    def test_check_probability_rejects(self, value):
        with pytest.raises(ConfigurationError):
            check_probability(value, "p")

    def test_check_in_range_inclusive_and_exclusive(self):
        assert check_in_range(1.0, "x", 1.0, 2.0) == 1.0
        with pytest.raises(ConfigurationError):
            check_in_range(1.0, "x", 1.0, 2.0, inclusive=False)

    def test_check_not_empty(self):
        assert check_not_empty([1], "xs") == [1]
        with pytest.raises(ConfigurationError):
            check_not_empty([], "xs")

    def test_check_type_single_and_tuple(self):
        assert check_type(3, "x", int) == 3
        assert check_type("s", "x", (int, str)) == "s"
        with pytest.raises(ConfigurationError, match="int"):
            check_type("s", "x", int)


class TestResolveAwaitable:
    def test_plain_values_pass_through(self):
        from repro.utils.awaitables import resolve_awaitable

        marker = object()
        assert resolve_awaitable(marker) is marker
        assert resolve_awaitable(None) is None
        assert resolve_awaitable([1, 2]) == [1, 2]

    def test_coroutine_runs_to_completion(self):
        import asyncio

        from repro.utils.awaitables import resolve_awaitable

        async def work():
            await asyncio.sleep(0)
            return 42

        assert resolve_awaitable(work()) == 42

    def test_exceptions_propagate(self):
        from repro.utils.awaitables import resolve_awaitable

        async def boom():
            raise ValueError("payload exploded")

        with pytest.raises(ValueError, match="payload exploded"):
            resolve_awaitable(boom())

    def test_private_loop_is_reused_across_calls(self):
        # The sync-context path caches one loop per thread; repeated
        # payload resolutions must not build/tear down loops per call.
        import asyncio

        from repro.utils.awaitables import resolve_awaitable

        seen_loops = set()

        async def probe():
            seen_loops.add(id(asyncio.get_running_loop()))
            return len(seen_loops)

        for _ in range(3):
            resolve_awaitable(probe())
        assert len(seen_loops) == 1

    def test_resolves_from_inside_a_running_loop(self):
        # A sync helper invoked as an asyncio-backend payload sits inside a
        # running loop; resolution must hop to a throwaway thread, not
        # crash on the nested asyncio.run.
        import asyncio

        from repro.utils.awaitables import resolve_awaitable

        async def inner():
            await asyncio.sleep(0)
            return "nested"

        def sync_helper():
            return resolve_awaitable(inner())

        async def driver():
            return sync_helper()

        assert asyncio.run(driver()) == "nested"
