"""Tests for tracing and validation helpers."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.utils.tracing import TraceEvent, Tracer
from repro.utils.validation import (
    check_in_range,
    check_non_negative,
    check_not_empty,
    check_positive,
    check_probability,
    check_type,
)


class TestTracer:
    def test_records_events_with_clock(self):
        clock = {"t": 0.0}
        tracer = Tracer(clock=lambda: clock["t"])
        tracer.record("phase.start", "begin", detail=1)
        clock["t"] = 2.5
        tracer.record("phase.end", "done")
        assert len(tracer) == 2
        assert tracer.events[0].time == 0.0
        assert tracer.events[1].time == 2.5
        assert tracer.events[0].data == {"detail": 1}

    def test_disabled_tracer_is_noop(self):
        tracer = Tracer(enabled=False)
        tracer.record("x", "y")
        assert len(tracer) == 0

    def test_filter_matches_prefix_and_exact(self):
        tracer = Tracer()
        tracer.record("phase.calibration.start")
        tracer.record("phase.calibration.end")
        tracer.record("phase.execution")
        tracer.record("phasex.other")
        assert len(tracer.filter("phase.calibration")) == 2
        assert len(tracer.filter("phase")) == 3
        assert len(tracer.filter("phase.execution")) == 1

    def test_categories_in_first_appearance_order(self):
        tracer = Tracer()
        tracer.record("b")
        tracer.record("a")
        tracer.record("b")
        assert tracer.categories() == ["b", "a"]

    def test_clear(self):
        tracer = Tracer()
        tracer.record("x")
        tracer.clear()
        assert len(tracer) == 0

    def test_bind_clock(self):
        tracer = Tracer()
        tracer.bind_clock(lambda: 42.0)
        tracer.record("x")
        assert tracer.events[0].time == 42.0

    def test_iteration(self):
        tracer = Tracer()
        tracer.record("x")
        tracer.record("y")
        assert [e.category for e in tracer] == ["x", "y"]


class TestTraceEvent:
    def test_matches_nested(self):
        event = TraceEvent(time=0.0, category="a.b.c", message="")
        assert event.matches("a.b")
        assert event.matches("a.b.c")
        assert not event.matches("a.bc")


class TestValidation:
    def test_check_positive_accepts_and_returns(self):
        assert check_positive(3, "x") == 3

    @pytest.mark.parametrize("value", [0, -1, -0.5])
    def test_check_positive_rejects(self, value):
        with pytest.raises(ConfigurationError, match="x"):
            check_positive(value, "x")

    def test_check_non_negative(self):
        assert check_non_negative(0, "x") == 0
        with pytest.raises(ConfigurationError):
            check_non_negative(-1e-9, "x")

    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_check_probability_accepts(self, value):
        assert check_probability(value, "p") == value

    @pytest.mark.parametrize("value", [-0.1, 1.1])
    def test_check_probability_rejects(self, value):
        with pytest.raises(ConfigurationError):
            check_probability(value, "p")

    def test_check_in_range_inclusive_and_exclusive(self):
        assert check_in_range(1.0, "x", 1.0, 2.0) == 1.0
        with pytest.raises(ConfigurationError):
            check_in_range(1.0, "x", 1.0, 2.0, inclusive=False)

    def test_check_not_empty(self):
        assert check_not_empty([1], "xs") == [1]
        with pytest.raises(ConfigurationError):
            check_not_empty([], "xs")

    def test_check_type_single_and_tuple(self):
        assert check_type(3, "x", int) == 3
        assert check_type("s", "x", (int, str)) == "s"
        with pytest.raises(ConfigurationError, match="int"):
            check_type("s", "x", int)
