"""Unit tests for the execution-backend layer."""

from __future__ import annotations

import pytest

from repro.backends import (
    ChainStage,
    SimulatedBackend,
    ThreadBackend,
    as_backend,
)
from repro.exceptions import ConfigurationError, GridError
from repro.grid.simulator import GridSimulator
from repro.grid.topology import GridBuilder
from repro.skeletons.base import Task


def small_grid():
    return GridBuilder().homogeneous(nodes=3, speed=2.0).named("unit").build(seed=0)


class TestAsBackend:
    def test_backend_passthrough(self):
        backend = SimulatedBackend(GridSimulator(small_grid()))
        assert as_backend(backend) is backend

    def test_simulator_wrapped(self):
        sim = GridSimulator(small_grid())
        backend = as_backend(sim)
        assert isinstance(backend, SimulatedBackend)
        assert backend.simulator is sim

    def test_topology_wrapped(self):
        backend = as_backend(small_grid())
        assert isinstance(backend, SimulatedBackend)

    def test_rejects_other_types(self):
        with pytest.raises(ConfigurationError):
            as_backend(object())


class TestSimulatedBackend:
    def test_forwards_clock_and_observation(self):
        sim = GridSimulator(small_grid())
        backend = SimulatedBackend(sim)
        node = sim.topology.node_ids[0]
        assert backend.now == sim.now
        backend.advance_to(5.0)
        assert sim.now == 5.0
        assert backend.observe_load(node, 1.0) == sim.observe_load(node, 1.0)
        assert backend.is_available(node, 1.0)
        assert backend.has_node(node)
        assert not backend.has_node("ghost")

    def test_dispatch_matches_manual_sequence(self):
        grid = small_grid()
        sim_a, sim_b = GridSimulator(grid), GridSimulator(grid)
        backend = SimulatedBackend(sim_a)
        master, worker = grid.node_ids[0], grid.node_ids[1]
        task = Task(task_id=0, payload=3, cost=4.0, input_bytes=100, output_bytes=50)

        handle = backend.dispatch(task, worker, lambda t: t.payload * 2,
                                  master_node=master, at_time=0.0)
        outcome = handle.outcome()

        send = sim_b.transfer(master, worker, 100, at_time=0.0)
        execution = sim_b.run_task(worker, 4.0, at_time=send.finished)
        back = sim_b.transfer(worker, master, 50, at_time=execution.finished)

        assert handle.done()
        assert outcome.output == 6
        assert not outcome.lost
        assert handle.master_free_after == send.finished
        assert outcome.exec_started == execution.started
        assert outcome.exec_finished == execution.finished
        assert outcome.finished == back.finished

    def test_probe_skips_payload_execution(self):
        grid = small_grid()
        backend = SimulatedBackend(GridSimulator(grid))
        calls = []
        task = Task(task_id=0, payload=1, cost=1.0)
        outcome = backend.dispatch(
            task, grid.node_ids[1], lambda t: calls.append(t),
            master_node=grid.node_ids[0], at_time=0.0, collect_output=False,
        ).outcome()
        assert outcome.output is None
        assert calls == []  # virtual timing never needs the real payload


class TestThreadBackend:
    def test_synthesised_topology(self):
        with ThreadBackend(workers=3) as backend:
            assert len(backend.available_nodes(0.0)) == 3
            for node in backend.available_nodes(0.0):
                assert backend.is_available(node)

    def test_unknown_node_raises(self):
        with ThreadBackend(workers=2) as backend:
            with pytest.raises(GridError):
                backend.node_free_at("ghost")
            with pytest.raises(GridError):
                backend.observe_load("ghost")

    def test_transfers_are_free(self):
        with ThreadBackend(topology=small_grid()) as backend:
            nodes = backend.available_nodes(0.0)
            record = backend.transfer(nodes[0], nodes[1], 1 << 20, at_time=2.5)
            assert record.started == record.finished == 2.5
            assert backend.observe_bandwidth(nodes[0], nodes[1]) > 0

    def test_dispatch_runs_payload_for_real(self):
        with ThreadBackend(workers=2) as backend:
            node = backend.available_nodes(0.0)[0]
            task = Task(task_id=0, payload=21, cost=1.0)
            outcome = backend.dispatch(
                task, node, lambda t: t.payload * 2, master_node=node,
                at_time=0.0,
            ).outcome()
            assert outcome.output == 42
            assert not outcome.lost
            assert outcome.exec_finished >= outcome.exec_started

    def test_probe_executes_but_discards_output(self):
        with ThreadBackend(workers=1) as backend:
            node = backend.available_nodes(0.0)[0]
            calls = []
            task = Task(task_id=0, payload=1, cost=1.0)
            outcome = backend.dispatch(
                task, node, lambda t: calls.append(t) or "x", master_node=node,
                at_time=0.0, collect_output=False,
            ).outcome()
            assert outcome.output is None
            assert calls  # wall-clock timing requires executing the payload

    def test_chain_preserves_stage_order(self):
        with ThreadBackend(workers=3) as backend:
            nodes = backend.available_nodes(0.0)
            stages = [
                ChainStage(pick=lambda free_at, n=nodes[i % len(nodes)]: n,
                           cost=lambda value: 1.0,
                           apply=fn)
                for i, fn in enumerate([lambda v: v + 1, lambda v: v * 10,
                                        lambda v: v - 3])
            ]
            task = Task(task_id=0, payload=4, cost=3.0)
            outcome = backend.dispatch_chain(
                task, stages, master_node=nodes[0], at_time=0.0
            ).outcome()
            assert outcome.output == (4 + 1) * 10 - 3
            assert len(outcome.stage_records) == 3
            assert outcome.item_cost == 3.0

    def test_close_is_idempotent_and_final(self):
        backend = ThreadBackend(workers=1)
        node = backend.available_nodes(0.0)[0]
        backend.close()
        backend.close()
        with pytest.raises(GridError):
            backend.dispatch(Task(task_id=0, payload=1, cost=1.0), node,
                             lambda t: t.payload, master_node=node, at_time=0.0)
