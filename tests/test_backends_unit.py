"""Unit tests for the execution-backend layer."""

from __future__ import annotations

import os
import time

import pytest

from repro.backends import (
    ChainStage,
    ChunkOutcome,
    FaultInjectingBackend,
    ProcessBackend,
    SimulatedBackend,
    ThreadBackend,
    as_backend,
)
from repro.exceptions import ConfigurationError, GridError
from repro.grid.failures import PermanentFailure
from repro.grid.simulator import GridSimulator
from repro.grid.topology import GridBuilder
from repro.skeletons.base import Task


def small_grid():
    return GridBuilder().homogeneous(nodes=3, speed=2.0).named("unit").build(seed=0)


# Process workers pickle their payload functions by reference, so everything
# shipped to a ProcessBackend below must be module-level.

def _double_payload(task: Task):
    return task.payload * 2


def _sleepy_payload(task: Task):
    time.sleep(0.01)
    return task.payload


def _kill_worker(task: Task):  # pragma: no cover - runs in the child
    os._exit(13)


def _plus_one(value):
    return value + 1


def _times_ten(value):
    return value * 10


def _minus_three(value):
    return value - 3


def _unit_cost(value):
    return 1.0


class TestAsBackend:
    def test_backend_passthrough(self):
        backend = SimulatedBackend(GridSimulator(small_grid()))
        assert as_backend(backend) is backend

    def test_simulator_wrapped(self):
        sim = GridSimulator(small_grid())
        backend = as_backend(sim)
        assert isinstance(backend, SimulatedBackend)
        assert backend.simulator is sim

    def test_topology_wrapped(self):
        backend = as_backend(small_grid())
        assert isinstance(backend, SimulatedBackend)

    def test_rejects_other_types(self):
        with pytest.raises(ConfigurationError):
            as_backend(object())


class TestSimulatedBackend:
    def test_forwards_clock_and_observation(self):
        sim = GridSimulator(small_grid())
        backend = SimulatedBackend(sim)
        node = sim.topology.node_ids[0]
        assert backend.now == sim.now
        backend.advance_to(5.0)
        assert sim.now == 5.0
        assert backend.observe_load(node, 1.0) == sim.observe_load(node, 1.0)
        assert backend.is_available(node, 1.0)
        assert backend.has_node(node)
        assert not backend.has_node("ghost")

    def test_dispatch_matches_manual_sequence(self):
        grid = small_grid()
        sim_a, sim_b = GridSimulator(grid), GridSimulator(grid)
        backend = SimulatedBackend(sim_a)
        master, worker = grid.node_ids[0], grid.node_ids[1]
        task = Task(task_id=0, payload=3, cost=4.0, input_bytes=100, output_bytes=50)

        handle = backend.dispatch(task, worker, lambda t: t.payload * 2,
                                  master_node=master, at_time=0.0)
        outcome = handle.outcome()

        send = sim_b.transfer(master, worker, 100, at_time=0.0)
        execution = sim_b.run_task(worker, 4.0, at_time=send.finished)
        back = sim_b.transfer(worker, master, 50, at_time=execution.finished)

        assert handle.done()
        assert outcome.output == 6
        assert not outcome.lost
        assert handle.master_free_after == send.finished
        assert outcome.exec_started == execution.started
        assert outcome.exec_finished == execution.finished
        assert outcome.finished == back.finished

    def test_probe_skips_payload_execution(self):
        grid = small_grid()
        backend = SimulatedBackend(GridSimulator(grid))
        calls = []
        task = Task(task_id=0, payload=1, cost=1.0)
        outcome = backend.dispatch(
            task, grid.node_ids[1], lambda t: calls.append(t),
            master_node=grid.node_ids[0], at_time=0.0, collect_output=False,
        ).outcome()
        assert outcome.output is None
        assert calls == []  # virtual timing never needs the real payload


class TestThreadBackend:
    def test_synthesised_topology(self):
        with ThreadBackend(workers=3) as backend:
            assert len(backend.available_nodes(0.0)) == 3
            for node in backend.available_nodes(0.0):
                assert backend.is_available(node)

    def test_unknown_node_raises(self):
        with ThreadBackend(workers=2) as backend:
            with pytest.raises(GridError):
                backend.node_free_at("ghost")
            with pytest.raises(GridError):
                backend.observe_load("ghost")

    def test_transfers_are_free(self):
        with ThreadBackend(topology=small_grid()) as backend:
            nodes = backend.available_nodes(0.0)
            record = backend.transfer(nodes[0], nodes[1], 1 << 20, at_time=2.5)
            assert record.started == record.finished == 2.5
            assert backend.observe_bandwidth(nodes[0], nodes[1]) > 0

    def test_dispatch_runs_payload_for_real(self):
        with ThreadBackend(workers=2) as backend:
            node = backend.available_nodes(0.0)[0]
            task = Task(task_id=0, payload=21, cost=1.0)
            outcome = backend.dispatch(
                task, node, lambda t: t.payload * 2, master_node=node,
                at_time=0.0,
            ).outcome()
            assert outcome.output == 42
            assert not outcome.lost
            assert outcome.exec_finished >= outcome.exec_started

    def test_probe_executes_but_discards_output(self):
        with ThreadBackend(workers=1) as backend:
            node = backend.available_nodes(0.0)[0]
            calls = []
            task = Task(task_id=0, payload=1, cost=1.0)
            outcome = backend.dispatch(
                task, node, lambda t: calls.append(t) or "x", master_node=node,
                at_time=0.0, collect_output=False,
            ).outcome()
            assert outcome.output is None
            assert calls  # wall-clock timing requires executing the payload

    def test_chain_preserves_stage_order(self):
        with ThreadBackend(workers=3) as backend:
            nodes = backend.available_nodes(0.0)
            stages = [
                ChainStage(pick=lambda free_at, n=nodes[i % len(nodes)]: n,
                           cost=lambda value: 1.0,
                           apply=fn)
                for i, fn in enumerate([lambda v: v + 1, lambda v: v * 10,
                                        lambda v: v - 3])
            ]
            task = Task(task_id=0, payload=4, cost=3.0)
            outcome = backend.dispatch_chain(
                task, stages, master_node=nodes[0], at_time=0.0
            ).outcome()
            assert outcome.output == (4 + 1) * 10 - 3
            assert len(outcome.stage_records) == 3
            assert outcome.item_cost == 3.0

    def test_close_is_idempotent_and_final(self):
        backend = ThreadBackend(workers=1)
        node = backend.available_nodes(0.0)[0]
        backend.close()
        backend.close()
        with pytest.raises(GridError):
            backend.dispatch(Task(task_id=0, payload=1, cost=1.0), node,
                             lambda t: t.payload, master_node=node, at_time=0.0)

    def test_context_manager_closes(self):
        with ThreadBackend(workers=1) as backend:
            node = backend.available_nodes(0.0)[0]
        with pytest.raises(GridError):
            backend.dispatch(Task(task_id=0, payload=1, cost=1.0), node,
                             lambda t: t.payload, master_node=node, at_time=0.0)


class TestNodeFreeAtSeeding:
    """node_free_at must not mistake a queued-up unseen node for a free one."""

    def test_unseen_node_borrows_first_observed_duration(self):
        with ThreadBackend(workers=2) as backend:
            n0, n1 = backend.available_nodes(0.0)
            # First completion anywhere (a calibration probe took ~50 ms).
            backend._note_done(n0, backend.now - 0.05)
            with backend._lock:
                backend._pending[n1] = 3  # unseen node, deep queue
            slack = backend.node_free_at(n1) - backend.now
            # The historical 1e-6 placeholder would give ~3e-6 here and the
            # scheduler would pile everything onto the queued node.
            assert slack > 0.1

    def test_queue_ranking_mixes_seen_and_unseen_nodes(self):
        with ThreadBackend(workers=2) as backend:
            n0, n1 = backend.available_nodes(0.0)
            backend._note_done(n0, backend.now - 0.05)
            with backend._lock:
                backend._pending[n1] = 4   # unseen but deeply queued
                backend._pending[n0] = 1   # seen, nearly free
            assert backend.node_free_at(n0) < backend.node_free_at(n1)

    def test_untouched_backend_still_answers(self):
        with ThreadBackend(workers=1) as backend:
            node = backend.available_nodes(0.0)[0]
            assert backend.node_free_at(node) >= 0.0


class TestDispatchChunk:
    """The generic chunk path over simulated and thread backends."""

    def test_simulated_chunk_matches_individual_dispatches(self):
        grid = small_grid()
        sim_a, sim_b = GridSimulator(grid), GridSimulator(grid)
        chunk_backend = SimulatedBackend(sim_a)
        single_backend = SimulatedBackend(sim_b)
        master, worker = grid.node_ids[0], grid.node_ids[1]
        tasks = [Task(task_id=i, payload=i, cost=2.0, input_bytes=64,
                      output_bytes=32) for i in range(3)]

        chunk = chunk_backend.dispatch_chunk(
            tasks, worker, lambda t: t.payload + 1, master_node=master,
            at_time=0.0,
        ).outcome()

        free = 0.0
        singles = []
        for task in tasks:
            handle = single_backend.dispatch(
                task, worker, lambda t: t.payload + 1, master_node=master,
                at_time=free,
            )
            free = max(free, handle.master_free_after)
            singles.append(handle.outcome())

        assert isinstance(chunk, ChunkOutcome)
        assert [o.output for o in chunk.outcomes] == [o.output for o in singles]
        assert [o.exec_started for o in chunk.outcomes] == \
            [o.exec_started for o in singles]
        assert chunk.finished == max(o.finished for o in singles)
        assert not chunk.lost_any

    def test_thread_chunk_runs_all_tasks(self):
        with ThreadBackend(workers=2) as backend:
            node = backend.available_nodes(0.0)[0]
            tasks = [Task(task_id=i, payload=i, cost=1.0) for i in range(4)]
            outcome = backend.dispatch_chunk(
                tasks, node, _double_payload, master_node=node, at_time=0.0,
            ).outcome()
            assert [o.output for o in outcome.outcomes] == [0, 2, 4, 6]
            assert outcome.duration >= 0.0


class TestProcessBackend:
    def test_synthesised_topology(self):
        with ProcessBackend(workers=2) as backend:
            assert len(backend.available_nodes(0.0)) == 2
            for node in backend.available_nodes(0.0):
                assert backend.is_available(node)

    def test_dispatch_runs_payload_in_worker_process(self):
        with ProcessBackend(workers=2) as backend:
            node = backend.available_nodes(0.0)[0]
            task = Task(task_id=0, payload=21, cost=1.0)
            outcome = backend.dispatch(
                task, node, _double_payload, master_node=node, at_time=0.0,
            ).outcome()
            assert outcome.output == 42
            assert not outcome.lost
            assert outcome.exec_finished >= outcome.exec_started >= outcome.submitted

    def test_probe_executes_but_discards_output(self):
        with ProcessBackend(workers=1) as backend:
            node = backend.available_nodes(0.0)[0]
            task = Task(task_id=0, payload=5, cost=1.0)
            outcome = backend.dispatch(
                task, node, _sleepy_payload, master_node=node, at_time=0.0,
                collect_output=False,
            ).outcome()
            assert outcome.output is None
            assert outcome.duration > 0.0  # the payload really ran

    def test_chunk_is_one_round_trip(self):
        with ProcessBackend(workers=1) as backend:
            node = backend.available_nodes(0.0)[0]
            tasks = [Task(task_id=i, payload=i, cost=1.0) for i in range(5)]
            outcome = backend.dispatch_chunk(
                tasks, node, _double_payload, master_node=node, at_time=0.0,
            ).outcome()
            assert [o.output for o in outcome.outcomes] == [0, 2, 4, 6, 8]
            # Per-task compute intervals stack inside the chunk extent.
            for before, after in zip(outcome.outcomes, outcome.outcomes[1:]):
                assert after.exec_started >= before.exec_finished - 1e-9
            assert outcome.finished >= outcome.submitted

    def test_chain_preserves_stage_order(self):
        with ProcessBackend(workers=3) as backend:
            nodes = backend.available_nodes(0.0)
            stages = [
                ChainStage(pick=lambda free_at, n=nodes[i % len(nodes)]: n,
                           cost=_unit_cost, apply=fn)
                for i, fn in enumerate([_plus_one, _times_ten, _minus_three])
            ]
            task = Task(task_id=0, payload=4, cost=3.0)
            outcome = backend.dispatch_chain(
                task, stages, master_node=nodes[0], at_time=0.0
            ).outcome()
            assert outcome.output == (4 + 1) * 10 - 3
            assert len(outcome.stage_records) == 3
            assert outcome.item_cost == 3.0

    def test_dead_worker_surfaces_as_lost_task_and_respawns(self):
        with ProcessBackend(workers=1) as backend:
            node = backend.available_nodes(0.0)[0]
            lost = backend.dispatch(
                Task(task_id=0, payload=1, cost=1.0), node, _kill_worker,
                master_node=node, at_time=0.0,
            ).outcome()
            assert lost.lost
            assert lost.output is None
            # The node's pool respawns: the next dispatch succeeds.
            ok = backend.dispatch(
                Task(task_id=1, payload=3, cost=1.0), node, _double_payload,
                master_node=node, at_time=0.0,
            ).outcome()
            assert ok.output == 6
            assert not ok.lost

    def test_start_method_falls_back_to_fork_for_pseudofile_main(self, monkeypatch):
        # A parent whose __main__ is a pseudo-file (python - <<heredoc)
        # cannot be re-imported by spawn-style children; the backend must
        # not pick forkserver there or every worker crashes at spawn.
        import sys
        import types

        from repro.backends import process as process_module

        fake_main = types.ModuleType("__main__")
        fake_main.__file__ = "<stdin>"
        fake_main.__spec__ = None
        monkeypatch.setitem(sys.modules, "__main__", fake_main)
        assert not process_module._forkserver_main_safe()
        context = process_module._mp_context(None)
        assert context.get_start_method() != "forkserver"

    def test_close_is_idempotent_and_final(self):
        backend = ProcessBackend(workers=1)
        node = backend.available_nodes(0.0)[0]
        backend.close()
        backend.close()
        with pytest.raises(GridError):
            backend.dispatch(Task(task_id=0, payload=1, cost=1.0), node,
                             _double_payload, master_node=node, at_time=0.0)


class TestProcessPayloadCache:
    """The shared-payload cache of the process backend's dispatch path."""

    def test_shared_payload_ships_once_per_node(self):
        with ProcessBackend(workers=1) as backend:
            node = backend.available_nodes(0.0)[0]
            for i in range(5):
                outcome = backend.dispatch(
                    Task(task_id=i, payload=i, cost=1.0), node,
                    _double_payload, master_node=node, at_time=0.0,
                ).outcome()
                assert outcome.output == i * 2
            # One shared entry (the (execute_fn, collect) pair), installed
            # on the node exactly once across the five dispatches.
            assert len(backend._shared_payloads) == 1
            assert len(backend._shipped[node]) == 1

    def test_task_and_chunk_share_one_payload(self):
        with ProcessBackend(workers=1) as backend:
            node = backend.available_nodes(0.0)[0]
            single = backend.dispatch(
                Task(task_id=0, payload=3, cost=1.0), node, _double_payload,
                master_node=node, at_time=0.0,
            ).outcome()
            chunk = backend.dispatch_chunk(
                [Task(task_id=i, payload=i, cost=1.0) for i in range(3)],
                node, _double_payload, master_node=node, at_time=0.0,
            ).outcome()
            assert single.output == 6
            assert [o.output for o in chunk.outcomes] == [0, 2, 4]
            assert len(backend._shared_payloads) == 1

    def test_cache_off_matches_cache_on(self):
        tasks = [Task(task_id=i, payload=i, cost=1.0) for i in range(6)]
        outputs = {}
        for cached in (True, False):
            with ProcessBackend(workers=1, payload_cache=cached) as backend:
                node = backend.available_nodes(0.0)[0]
                outcome = backend.dispatch_chunk(
                    tasks, node, _double_payload, master_node=node,
                    at_time=0.0,
                ).outcome()
                outputs[cached] = [o.output for o in outcome.outcomes]
        assert outputs[True] == outputs[False] == [0, 2, 4, 6, 8, 10]

    def test_respawned_worker_gets_the_payload_reshipped(self):
        # A respawned worker process starts with an empty cache; the
        # parent's shipped-set for the node dies with the broken pool, so
        # the next dispatch re-installs and still computes correctly.
        with ProcessBackend(workers=1) as backend:
            node = backend.available_nodes(0.0)[0]
            ok = backend.dispatch(
                Task(task_id=0, payload=2, cost=1.0), node, _double_payload,
                master_node=node, at_time=0.0,
            ).outcome()
            assert ok.output == 4
            assert backend._shipped[node]
            lost = backend.dispatch(
                Task(task_id=1, payload=1, cost=1.0), node, _kill_worker,
                master_node=node, at_time=0.0,
            ).outcome()
            assert lost.lost
            assert node not in backend._shipped
            again = backend.dispatch(
                Task(task_id=2, payload=5, cost=1.0), node, _double_payload,
                master_node=node, at_time=0.0,
            ).outcome()
            assert again.output == 10
            assert not again.lost

    def test_unpicklable_shared_part_falls_back_to_by_value_path(self):
        # A shared part that cannot be preserialised must not crash the
        # dispatch synchronously: the by-value path reports the pickling
        # failure through the future, exactly as it always has.
        with ProcessBackend(workers=1) as backend:
            node = backend.available_nodes(0.0)[0]
            handle = backend.dispatch(
                Task(task_id=0, payload=1, cost=1.0), node,
                lambda t: t.payload, master_node=node, at_time=0.0,
            )
            with pytest.raises(Exception):
                handle.outcome()
            assert backend._shared_payloads == {}


class TestFaultInjectingBackend:
    def test_rejects_non_backend(self):
        with pytest.raises(ConfigurationError):
            FaultInjectingBackend(object())

    def test_rejects_negative_slowdown(self):
        with pytest.raises(ConfigurationError):
            FaultInjectingBackend(ThreadBackend(workers=1),
                                  slowdowns={"threads/n0": -1.0})

    def test_availability_follows_schedule(self):
        inner = ThreadBackend(workers=2)
        nodes = inner.available_nodes(0.0)
        backend = FaultInjectingBackend(
            inner, failures=PermanentFailure.at(0.0, nodes[0]))
        with backend:
            assert not backend.is_available(nodes[0])
            assert backend.is_available(nodes[1])
            assert backend.available_nodes(backend.now) == [nodes[1]]
            assert backend.name == "thread+faults"

    def test_dispatch_to_dead_node_is_lost_in_transit(self):
        inner = ThreadBackend(workers=2)
        nodes = inner.available_nodes(0.0)
        backend = FaultInjectingBackend(
            inner, failures=PermanentFailure.at(0.0, nodes[0]))
        with backend:
            outcome = backend.dispatch(
                Task(task_id=0, payload=1, cost=1.0), nodes[0],
                lambda t: t.payload, master_node=nodes[1], at_time=0.0,
            ).outcome()
            assert outcome.lost

    def test_mid_task_death_converts_outcome_to_lost(self):
        inner = ThreadBackend(workers=1)
        node = inner.available_nodes(0.0)[0]
        backend = FaultInjectingBackend(
            inner, failures=PermanentFailure.at(inner.now + 0.01, node))
        with backend:
            outcome = backend.dispatch(
                Task(task_id=0, payload=7, cost=1.0), node,
                lambda t: time.sleep(0.2) or t.payload,
                master_node=node, at_time=0.0,
            ).outcome()
            assert outcome.lost
            assert outcome.output is None

    def test_calibration_probes_are_never_lost(self):
        inner = ThreadBackend(workers=1)
        node = inner.available_nodes(0.0)[0]
        backend = FaultInjectingBackend(
            inner, failures=PermanentFailure.at(inner.now + 0.01, node))
        with backend:
            outcome = backend.dispatch(
                Task(task_id=0, payload=7, cost=1.0), node,
                lambda t: time.sleep(0.05) or t.payload,
                master_node=node, at_time=0.0, check_loss=False,
            ).outcome()
            assert not outcome.lost

    def test_chunk_tasks_on_dead_node_all_lost(self):
        inner = ThreadBackend(workers=2)
        nodes = inner.available_nodes(0.0)
        backend = FaultInjectingBackend(
            inner, failures=PermanentFailure.at(0.0, nodes[0]))
        with backend:
            tasks = [Task(task_id=i, payload=i, cost=1.0) for i in range(3)]
            outcome = backend.dispatch_chunk(
                tasks, nodes[0], lambda t: t.payload, master_node=nodes[1],
                at_time=0.0,
            ).outcome()
            assert outcome.lost_any
            assert all(o.lost for o in outcome.outcomes)

    def test_slowdown_stretches_measured_duration(self):
        inner = ThreadBackend(workers=2)
        fast, slow = inner.available_nodes(0.0)
        backend = FaultInjectingBackend(inner, slowdowns={slow: 0.05})
        with backend:
            quick = backend.dispatch(
                Task(task_id=0, payload=1, cost=1.0), fast,
                lambda t: t.payload, master_node=fast, at_time=0.0,
            ).outcome()
            dragged = backend.dispatch(
                Task(task_id=1, payload=1, cost=1.0), slow,
                lambda t: t.payload, master_node=fast, at_time=0.0,
            ).outcome()
            assert dragged.output == 1  # payload still runs
            assert dragged.duration > quick.duration + 0.03

    def test_close_closes_inner_backend(self):
        inner = ThreadBackend(workers=1)
        node = inner.available_nodes(0.0)[0]
        backend = FaultInjectingBackend(inner)
        backend.close()
        with pytest.raises(GridError):
            inner.dispatch(Task(task_id=0, payload=1, cost=1.0), node,
                           lambda t: t.payload, master_node=node, at_time=0.0)
