"""graspcheck engine + rule tests.

Every rule gets a bad fixture reproducing the historical bug class it
encodes (which must fire) and a minimal good fixture (which must stay
clean), plus engine-level tests for suppression comments, JSON output,
path scoping and the CLI.  The capstone test runs the full rule set over
the installed ``repro`` package: the tree must be clean, forever.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.exceptions import LintError
from repro.lint import all_rules, get_rule, lint_paths, lint_source
from repro.lint.engine import render_json, render_text


def ids_of(findings):
    return [f.rule_id for f in findings]


def lint_as(path, source, select=None):
    """Lint ``source`` as if it lived at ``path`` (for scope-sensitive rules)."""
    return lint_source(source, path=path, select=select)


# --------------------------------------------------------------------- engine


def test_registry_has_at_least_eight_rules_with_docs():
    rules = all_rules()
    assert len(rules) >= 8
    assert [r.id for r in rules] == sorted({r.id for r in rules})
    for rule in rules:
        assert rule.id.startswith("GC")
        assert rule.summary
        assert rule.rationale


def test_get_rule_unknown_id_raises():
    with pytest.raises(LintError):
        get_rule("GC999")


def test_syntax_error_raises_lint_error():
    with pytest.raises(LintError):
        lint_source("def broken(:\n", path="x.py")


def test_lint_paths_missing_target_raises(tmp_path):
    with pytest.raises(LintError):
        lint_paths([str(tmp_path / "nope.py")])


def test_suppression_single_rule():
    bad = "import threading\nt = threading.Thread(target=print)  # graspcheck: disable=GC001\n"
    assert lint_source(bad, path="src/repro/x.py") == []


def test_suppression_all_rules_bare_disable():
    bad = "import threading\nt = threading.Thread(target=print)  # graspcheck: disable\n"
    assert lint_source(bad, path="src/repro/x.py") == []


def test_suppression_other_rule_does_not_mask():
    bad = "import threading\nt = threading.Thread(target=print)  # graspcheck: disable=GC007\n"
    assert "GC001" in ids_of(lint_source(bad, path="src/repro/x.py"))


def test_select_limits_rules():
    bad = "import threading\nt = threading.Thread(target=print)\n"
    assert lint_source(bad, path="src/repro/x.py", select=["GC002"]) == []
    assert ids_of(lint_source(bad, path="src/repro/x.py", select=["GC001"])) == [
        "GC001",
        "GC001",
    ]


def test_json_output_round_trips(tmp_path):
    target = tmp_path / "repro" / "cluster" / "bad.py"
    target.parent.mkdir(parents=True)
    target.write_text("def f(sock):\n    sock.close()\n")
    findings = lint_paths([str(target)])
    payload = json.loads(render_json(findings))
    assert payload["count"] == len(findings) == 1
    assert payload["findings"][0]["rule_id"] == "GC002"
    assert payload["findings"][0]["line"] == 2
    assert render_text(findings).endswith("1 finding(s)")
    assert render_text([]) == "graspcheck: clean"


def test_cli_exit_codes(tmp_path):
    clean = tmp_path / "clean.py"
    clean.write_text("x = 1\n")
    bad = tmp_path / "repro" / "cluster" / "bad.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("def f(sock):\n    sock.close()\n")
    env_cmd = [sys.executable, "-m", "repro.lint"]
    ok = subprocess.run(env_cmd + [str(clean)], capture_output=True, text=True)
    assert ok.returncode == 0
    assert "clean" in ok.stdout
    dirty = subprocess.run(
        env_cmd + [str(bad), "--format", "json"], capture_output=True, text=True
    )
    assert dirty.returncode == 1
    assert json.loads(dirty.stdout)["count"] == 1
    missing = subprocess.run(
        env_cmd + [str(tmp_path / "nope.py")], capture_output=True, text=True
    )
    assert missing.returncode == 2
    listing = subprocess.run(env_cmd + ["--list-rules"], capture_output=True, text=True)
    assert listing.returncode == 0
    assert "GC008" in listing.stdout
    assert "GC009" in listing.stdout


# ---------------------------------------------------------------------- GC001


def test_gc001_fires_on_unnamed_thread():
    bad = "import threading\nthreading.Thread(target=print, daemon=True)\n"
    findings = lint_source(bad, path="src/repro/x.py")
    assert ids_of(findings) == ["GC001"]
    assert "name=" in findings[0].message


def test_gc001_fires_on_wrong_prefix_and_missing_daemon():
    bad = "import threading\nthreading.Thread(target=print, name='reader')\n"
    assert ids_of(lint_source(bad, path="src/repro/x.py")) == ["GC001", "GC001"]


def test_gc001_fires_on_dynamic_name_without_static_prefix():
    bad = (
        "import threading\n"
        "threading.Thread(target=print, name=f'{kind}-reader', daemon=True)\n"
    )
    assert ids_of(lint_source(bad, path="src/repro/x.py")) == ["GC001"]


def test_gc001_clean_on_grasp_named_daemon_thread():
    good = (
        "import threading\n"
        "threading.Thread(target=print, name='grasp-reader', daemon=True)\n"
        "threading.Thread(target=print, name=f'grasp-rank-{r}', daemon=False)\n"
    )
    assert lint_source(good, path="src/repro/x.py") == []


# ---------------------------------------------------------------------- GC002


def test_gc002_fires_on_close_without_shutdown():
    bad = "def f(self):\n    self._sock.close()\n"
    findings = lint_as("src/repro/cluster/w.py", bad)
    assert ids_of(findings) == ["GC002"]


def test_gc002_clean_with_shutdown_same_function():
    good = (
        "import socket\n"
        "def f(self):\n"
        "    try:\n"
        "        self._sock.shutdown(socket.SHUT_RDWR)\n"
        "    except OSError:\n"
        "        pass\n"
        "    self._sock.close()\n"
    )
    assert lint_as("src/repro/cluster/w.py", good) == []


def test_gc002_scoped_to_cluster_dirs():
    bad = "def f(self):\n    self._sock.close()\n"
    assert lint_as("src/repro/comm/w.py", bad) == []


def test_gc002_different_sockets_tracked_separately():
    bad = (
        "import socket\n"
        "def f(self, other_sock):\n"
        "    self._sock.shutdown(socket.SHUT_RDWR)\n"
        "    self._sock.close()\n"
        "    other_sock.close()\n"
    )
    findings = lint_as("src/repro/cluster/w.py", bad)
    assert ids_of(findings) == ["GC002"]
    assert "other_sock" in findings[0].message


# ---------------------------------------------------------------------- GC003


def test_gc003_fires_on_lambda_into_registry():
    bad = "register_payload(lambda x: x)\n"
    assert ids_of(lint_source(bad, path="src/repro/x.py")) == ["GC003"]


def test_gc003_fires_on_lambda_into_coordinator_submit():
    bad = "def run(coordinator):\n    coordinator.submit('n', lambda x: x)\n"
    assert ids_of(lint_source(bad, path="src/repro/x.py")) == ["GC003"]


def test_gc003_fires_on_nested_def_reference():
    bad = (
        "def outer(coordinator):\n"
        "    def worker(x):\n"
        "        return x\n"
        "    coordinator.submit('n', worker)\n"
    )
    findings = lint_source(bad, path="src/repro/x.py")
    assert ids_of(findings) == ["GC003"]
    assert "worker" in findings[0].message


def test_gc003_clean_on_module_level_function():
    good = (
        "def worker(x):\n"
        "    return x\n"
        "def run(coordinator):\n"
        "    coordinator.submit('n', worker)\n"
    )
    assert lint_source(good, path="src/repro/x.py") == []


def test_gc003_plain_submit_on_non_coordinator_ignored():
    good = "def run(executor):\n    executor.submit(lambda: 1)\n"
    assert lint_source(good, path="src/repro/x.py") == []


# ---------------------------------------------------------------------- GC004


def test_gc004_fires_on_base_exception_capture():
    bad = (
        "def execute(task):\n"
        "    try:\n"
        "        value = run_payload(task)\n"
        "    except BaseException as exc:\n"
        "        return exc\n"
    )
    findings = lint_source(bad, path="src/repro/x.py")
    assert ids_of(findings) == ["GC004"]


def test_gc004_fires_on_bare_except_and_tuple():
    bad = (
        "def execute(task):\n"
        "    try:\n"
        "        value = run_chunk(task)\n"
        "    except (OSError, BaseException):\n"
        "        pass\n"
        "def execute2(task):\n"
        "    try:\n"
        "        value = run_stage(task)\n"
        "    except:\n"
        "        pass\n"
    )
    assert ids_of(lint_source(bad, path="src/repro/x.py")) == ["GC004", "GC004"]


def test_gc004_clean_on_exception_capture():
    good = (
        "def execute(task):\n"
        "    try:\n"
        "        value = run_payload(task)\n"
        "    except Exception as exc:\n"
        "        return exc\n"
    )
    assert lint_source(good, path="src/repro/x.py") == []


def test_gc004_ignores_try_without_payload_call():
    good = "def f():\n    try:\n        g()\n    except BaseException:\n        raise\n"
    assert lint_source(good, path="src/repro/x.py") == []


# ---------------------------------------------------------------------- GC005


def test_gc005_fires_on_wall_clock_in_core():
    bad = "import time\ndef tick():\n    return time.monotonic()\n"
    assert ids_of(lint_as("src/repro/core/x.py", bad)) == ["GC005"]


def test_gc005_fires_on_aliased_and_from_imports():
    bad = (
        "import time as _t\n"
        "from time import perf_counter as pc\n"
        "def tick():\n"
        "    return _t.time() + pc()\n"
    )
    assert ids_of(lint_as("src/repro/monitor/x.py", bad)) == ["GC005", "GC005"]


def test_gc005_clean_outside_scoped_dirs():
    ok = "import time\ndef tick():\n    return time.monotonic()\n"
    assert lint_as("src/repro/cluster/x.py", ok) == []


def test_gc005_clean_on_backend_clock():
    good = "def tick(backend):\n    return backend.now\n"
    assert lint_as("src/repro/skeletons/x.py", good) == []


# ---------------------------------------------------------------------- GC006


def test_gc006_fires_on_result_in_coroutine():
    bad = "async def drain(self, fut):\n    return fut.result()\n"
    findings = lint_as("src/repro/backends/async_.py", bad)
    assert ids_of(findings) == ["GC006"]


def test_gc006_fires_on_sync_lock_in_coroutine():
    bad = "async def drain(self):\n    with self._lock:\n        pass\n"
    assert ids_of(lint_as("src/repro/backends/async_.py", bad)) == ["GC006"]


def test_gc006_fires_on_blocking_lambda_posted_to_loop():
    bad = "def submit(self, fut):\n    self._runner.post(lambda: fut.result())\n"
    assert ids_of(lint_as("src/repro/backends/async_.py", bad)) == ["GC006"]


def test_gc006_clean_on_await_and_async_lock():
    good = (
        "async def drain(self, fut):\n"
        "    async with self._alock:\n"
        "        return await fut\n"
    )
    assert lint_as("src/repro/backends/async_.py", good) == []


def test_gc006_scoped_to_async_modules():
    ok = "async def drain(self, fut):\n    return fut.result()\n"
    assert lint_as("src/repro/backends/process.py", ok) == []


# ---------------------------------------------------------------------- GC007


def test_gc007_fires_on_inline_encode_in_sendall():
    bad = "def send(self, msg):\n    self.sock.sendall(encode(msg))\n"
    findings = lint_as("src/repro/cluster/c.py", bad)
    assert ids_of(findings) == ["GC007"]


def test_gc007_fires_on_pickle_dumps_inline():
    bad = "import pickle\ndef send(self, msg):\n    self.sock.sendall(pickle.dumps(msg))\n"
    assert ids_of(lint_as("src/repro/cluster/c.py", bad)) == ["GC007"]


def test_gc007_clean_on_preencoded_frame():
    good = (
        "def send(self, msg):\n"
        "    payload = encode(msg)\n"
        "    with self.send_lock:\n"
        "        self.sock.sendall(payload)\n"
    )
    assert lint_as("src/repro/cluster/c.py", good) == []


def test_gc007_scoped_to_cluster_dirs():
    ok = "def send(self, msg):\n    self.sock.sendall(encode(msg))\n"
    assert lint_as("src/repro/comm/c.py", ok) == []


# ---------------------------------------------------------------------- GC008


def test_gc008_fires_on_unprotected_writeback_after_loop():
    bad = (
        "class StreamDecoder:\n"
        "    def feed(self, data):\n"
        "        buf = self._buffer + data\n"
        "        offset = 0\n"
        "        out = []\n"
        "        while offset < len(buf):\n"
        "            frame, offset = decode_one(buf, offset)\n"
        "            out.append(frame)\n"
        "        self._buffer = buf[offset:]\n"
        "        return out\n"
    )
    findings = lint_source(bad, path="src/repro/x.py")
    assert ids_of(findings) == ["GC008"]


def test_gc008_clean_with_finally_writeback():
    good = (
        "class StreamDecoder:\n"
        "    def feed(self, data):\n"
        "        buf = self._buffer + data\n"
        "        offset = 0\n"
        "        out = []\n"
        "        try:\n"
        "            while offset < len(buf):\n"
        "                frame, offset = decode_one(buf, offset)\n"
        "                out.append(frame)\n"
        "        finally:\n"
        "            self._buffer = buf[offset:]\n"
        "        return out\n"
    )
    assert lint_source(good, path="src/repro/x.py") == []


def test_gc008_only_applies_to_decoder_classes():
    ok = (
        "class Accumulator:\n"
        "    def feed(self, data):\n"
        "        total = 0\n"
        "        for item in data:\n"
        "            total += item\n"
        "        self._total = total\n"
    )
    assert lint_source(ok, path="src/repro/x.py") == []


def test_gc008_incremental_updates_inside_loop_are_clean():
    good = (
        "class StreamDecoder:\n"
        "    def feed(self, data):\n"
        "        out = []\n"
        "        for b in data:\n"
        "            self._offset += 1\n"
        "            out.append(b)\n"
        "        return out\n"
    )
    assert lint_source(good, path="src/repro/x.py") == []


# ---------------------------------------------------------------------- GC009


def test_gc009_fires_on_wall_clock_in_metrics():
    bad = "import time\ndef stamp():\n    return time.time()\n"
    assert ids_of(lint_as("src/repro/metrics/registry.py", bad)) == ["GC009"]


def test_gc009_fires_on_aliased_and_from_imports():
    bad = (
        "import time as _t\n"
        "from time import perf_counter as pc\n"
        "def stamp():\n"
        "    return _t.time() + pc()\n"
    )
    assert ids_of(lint_as("src/repro/metrics/x.py", bad)) == ["GC009", "GC009"]


def test_gc009_clean_in_clock_shim():
    ok = "import time\ndef wall_time():\n    return time.time()\n"
    assert lint_as("src/repro/metrics/clock.py", ok) == []


def test_gc009_clean_outside_metrics():
    ok = "import time\ndef stamp():\n    return time.time()\n"
    assert lint_as("src/repro/cluster/x.py", ok) == []


def test_gc009_clean_without_clock_calls():
    ok = "from repro.metrics.clock import wall_time\nstamp = wall_time()\n"
    assert lint_as("src/repro/metrics/registry.py", ok) == []


# ---------------------------------------------------------------------- GC010


def test_gc010_fires_on_raw_shared_memory_outside_shm_module():
    bad = (
        "from multiprocessing.shared_memory import SharedMemory\n"
        "def grab(n):\n"
        "    return SharedMemory(create=True, size=n)\n"
    )
    assert ids_of(lint_as("src/repro/cluster/coordinator.py", bad)) == ["GC010"]


def test_gc010_fires_on_module_attribute_and_alias_forms():
    bad = (
        "from multiprocessing import shared_memory\n"
        "from multiprocessing.shared_memory import SharedMemory as SM\n"
        "def grab(n):\n"
        "    a = shared_memory.SharedMemory(create=True, size=n)\n"
        "    b = SM(name='x')\n"
        "    return a, b\n"
    )
    findings = ids_of(lint_as("src/repro/backends/process.py", bad))
    assert findings == ["GC010", "GC010"]


def test_gc010_clean_inside_backends_shm_module():
    ok = (
        "from multiprocessing.shared_memory import SharedMemory\n"
        "def grab(n):\n"
        "    return SharedMemory(create=True, size=n)\n"
    )
    assert lint_as("src/repro/backends/shm.py", ok) == []


def test_gc010_clean_when_going_through_the_registry():
    ok = (
        "from repro.backends.shm import BufferRegistry\n"
        "def grab(registry, n):\n"
        "    return registry.create(n)\n"
    )
    assert lint_as("src/repro/cluster/coordinator.py", ok) == []


def test_gc010_import_alone_does_not_fire():
    ok = "from multiprocessing.shared_memory import SharedMemory\n"
    assert lint_as("src/repro/cluster/x.py", ok) == []


# ------------------------------------------------------------------- capstone


def test_repro_package_is_graspcheck_clean():
    package_root = Path(repro.__file__).parent
    findings = lint_paths([str(package_root)])
    assert findings == [], "\n" + "\n".join(f.render() for f in findings)
