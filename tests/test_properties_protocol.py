"""Property tests for the cluster wire protocol (v2).

The codec's contract, pinned with Hypothesis:

* **Round-trip identity** — any sequence of protocol messages (pickled
  control frames and the binary RESULT / HEARTBEAT / PUT_PAYLOAD /
  DISPATCH_REF codecs alike), encoded, concatenated and re-fed to a
  :class:`repro.cluster.protocol.FrameDecoder` at *arbitrary byte
  boundaries* (one byte at a time, random splits, one giant buffer — TCP
  guarantees none of them), decodes to the identical message sequence.
* **Out-of-band reassembly** — large bytes-like bodies travel as raw
  pickle-protocol-5 buffers behind the pickle stream and reassemble to
  equal values on the far side.
* **Clean failure** — truncated streams, corrupt magic, unsupported
  versions, oversized lengths, garbage bodies, unknown type codes and
  malformed *binary* frames (truncated structs, bad kind codes, trailing
  bytes) all raise :class:`repro.exceptions.ProtocolError` instead of
  hanging, guessing or returning partial nonsense.
* **Linear decode** — a burst of many small frames decodes in O(bytes);
  the historical compact-per-frame buffer made it O(bytes × frames).
"""

from __future__ import annotations

import pickle
import struct
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    Dispatch,
    DispatchRef,
    FrameDecoder,
    Goodbye,
    Heartbeat,
    Hello,
    PutPayload,
    Result,
    Welcome,
    encode,
)
from repro.exceptions import ProtocolError

# Pickle round-trips must preserve equality, so keep payload atoms to
# types with well-defined ==; no NaNs.  bytearray exercises the
# out-of-band buffer path of the binary codecs.
_atoms = (st.none() | st.booleans() | st.integers()
          | st.floats(allow_nan=False, allow_infinity=True)
          | st.text(max_size=40) | st.binary(max_size=40)
          | st.binary(max_size=64).map(bytearray))
_payloads = st.recursive(
    _atoms,
    lambda inner: st.lists(inner, max_size=4).map(tuple)
    | st.lists(inner, max_size=4)
    | st.dictionaries(st.text(max_size=8), inner, max_size=4),
    max_leaves=12,
)

_node_ids = st.text(min_size=1, max_size=24)
_loads = st.floats(0, 1, allow_nan=False) | st.just(-1.0)
_kinds = st.sampled_from(["task", "chunk", "stage"])

# A Result carries exactly one body: value when ok, error when not (the
# binary codec ships whichever applies and reconstructs the other as None).
_results = st.booleans().flatmap(lambda ok: st.builds(
    Result, request_id=st.integers(0, 2**62), ok=st.just(ok),
    value=_payloads if ok else st.none(),
    error=st.none() if ok else (st.none() | st.text(max_size=40)),
    load=_loads,
))

_messages = st.one_of(
    st.builds(Hello, node_id=_node_ids, host=st.text(max_size=24),
              pid=st.integers(1, 2**31 - 1), cpus=st.integers(1, 4096),
              protocol=st.just(PROTOCOL_VERSION)),
    st.builds(Welcome, node_id=_node_ids),
    st.builds(Dispatch, request_id=st.integers(0, 2**62), kind=_kinds,
              payload=st.lists(_payloads, max_size=3).map(tuple)),
    _results,
    st.builds(Heartbeat, node_id=_node_ids,
              load=st.floats(0, 1, allow_nan=False)),
    st.builds(Goodbye, node_id=_node_ids, reason=st.text(max_size=40)),
    st.builds(PutPayload, payload_id=st.integers(0, 2**62),
              blob=st.binary(max_size=128)),
    st.builds(DispatchRef, request_id=st.integers(0, 2**62),
              payload_id=st.integers(0, 2**62), kind=_kinds,
              args=_payloads),
)


class TestRoundTrip:
    @given(messages=st.lists(_messages, max_size=8), data=st.data())
    @settings(max_examples=150, deadline=None)
    def test_encode_frame_split_decode_is_identity(self, messages, data):
        blob = b"".join(encode(m) for m in messages)
        # Split the byte stream at arbitrary boundaries, like TCP would.
        cuts = sorted(data.draw(
            st.lists(st.integers(0, len(blob)), max_size=12),
            label="split points",
        ))
        decoder = FrameDecoder()
        decoded = []
        previous = 0
        for cut in cuts + [len(blob)]:
            decoded.extend(decoder.feed(blob[previous:cut]))
            previous = cut
        decoder.at_eof()        # the stream ended on a frame boundary
        assert decoded == messages

    @given(message=_messages)
    @settings(max_examples=100, deadline=None)
    def test_byte_at_a_time_feeding(self, message):
        blob = encode(message)
        decoder = FrameDecoder()
        decoded = []
        for i in range(len(blob)):
            decoded.extend(decoder.feed(blob[i:i + 1]))
        assert decoded == [message]
        assert decoder.pending_bytes == 0

    @given(body=st.binary(min_size=1, max_size=1 << 16).map(bytearray),
           load=_loads, data=st.data())
    @settings(max_examples=50, deadline=None)
    def test_out_of_band_buffers_reassemble(self, body, load, data):
        # bytearray bodies ride as raw out-of-band buffers behind the
        # pickle stream; the value must survive arbitrary frame splits
        # AND stay intact when the source buffer is mutated afterwards
        # (the codec must not alias the caller's bytearray).
        message = Result(request_id=7, ok=True,
                         value=(body, [body, b"tail"]), load=load)
        blob = encode(message)
        expected = bytearray(body)
        body[:] = b"\x00" * len(body)
        cut = data.draw(st.integers(0, len(blob)), label="split point")
        decoder = FrameDecoder()
        decoded = decoder.feed(blob[:cut]) + decoder.feed(blob[cut:])
        [result] = decoded
        first, (second, tail) = result.value
        assert first == expected and second == expected and tail == b"tail"
        assert result.load == load

    @given(messages=st.lists(_messages, min_size=1, max_size=6))
    @settings(max_examples=50, deadline=None)
    def test_decoded_buffers_do_not_pin_the_decoder(self, messages):
        # Decoded out-of-band views alias an immutable per-frame bytes
        # object, never the decoder's mutable receive buffer — so holding
        # results can't make the next feed() raise BufferError.
        decoder = FrameDecoder()
        kept = []
        for message in messages:
            kept.extend(decoder.feed(encode(message)))
        assert kept == messages


class TestCleanFailure:
    @given(message=_messages, drop=st.integers(min_value=1))
    @settings(max_examples=100, deadline=None)
    def test_truncated_stream_raises_at_eof(self, message, drop):
        blob = encode(message)
        # Keep at least one byte: an empty stream is legitimately clean.
        truncated = blob[:-min(drop, len(blob) - 1)]
        decoder = FrameDecoder()
        assert decoder.feed(truncated) == []    # never a partial message
        with pytest.raises(ProtocolError, match="mid-frame"):
            decoder.at_eof()

    @given(message=_messages, flip=st.integers(0, 3))
    @settings(max_examples=50, deadline=None)
    def test_corrupt_magic_raises(self, message, flip):
        blob = bytearray(encode(message))
        blob[flip] ^= 0xFF
        with pytest.raises(ProtocolError, match="magic"):
            FrameDecoder().feed(bytes(blob))

    @given(message=_messages,
           version=st.integers(0, 255).filter(lambda v: v != PROTOCOL_VERSION))
    @settings(max_examples=50, deadline=None)
    def test_unsupported_version_raises(self, message, version):
        blob = bytearray(encode(message))
        blob[4] = version
        with pytest.raises(ProtocolError, match="version"):
            FrameDecoder().feed(bytes(blob))

    def test_oversized_length_raises_before_buffering(self):
        header = struct.pack(">4sBI", b"GRSP", PROTOCOL_VERSION,
                             MAX_FRAME_BYTES + 1)
        with pytest.raises(ProtocolError, match="limit"):
            FrameDecoder().feed(header)

    @given(garbage=st.binary(min_size=1, max_size=64))
    @settings(max_examples=50, deadline=None)
    def test_garbage_body_raises(self, garbage):
        frame = struct.pack(">4sBI", b"GRSP", PROTOCOL_VERSION,
                            len(garbage)) + garbage
        decoder = FrameDecoder()
        try:
            messages = decoder.feed(frame)
        except ProtocolError:
            return      # the common case: undecodable/unknown-type body
        # Astronomically unlikely outside the fixed-layout codecs: random
        # bytes that happen to decode must still yield protocol messages.
        assert all(type(m).__module__ == "repro.cluster.protocol"
                   for m in messages)

    def test_empty_body_raises(self):
        frame = struct.pack(">4sBI", b"GRSP", PROTOCOL_VERSION, 0)
        with pytest.raises(ProtocolError, match="empty frame body"):
            FrameDecoder().feed(frame)

    def test_unknown_type_code_raises(self):
        body = bytes([250]) + pickle.dumps(("nope",))
        frame = struct.pack(">4sBI", b"GRSP", PROTOCOL_VERSION,
                            len(body)) + body
        with pytest.raises(ProtocolError, match="unknown message type"):
            FrameDecoder().feed(frame)

    def test_wrong_arity_raises(self):
        # Welcome (code 2) takes node_id + protocol, not four fields.
        body = bytes([2]) + pickle.dumps(("a", "b", "c", "d"))
        frame = struct.pack(">4sBI", b"GRSP", PROTOCOL_VERSION,
                            len(body)) + body
        with pytest.raises(ProtocolError, match="malformed Welcome"):
            FrameDecoder().feed(frame)

    @given(cut=st.integers(1, 16))
    @settings(max_examples=30, deadline=None)
    def test_truncated_binary_result_raises(self, cut):
        # Chop the RESULT body short of its fixed struct / oob sections
        # but reframe the remainder as a complete frame: the *binary
        # decoder* must catch it, not the length check.
        whole = encode(Result(request_id=1, ok=True, value=b"x" * 32))
        body = whole[struct.calcsize(">4sBI"):]
        clipped = body[:max(1, len(body) - cut)]
        frame = struct.pack(">4sBI", b"GRSP", PROTOCOL_VERSION,
                            len(clipped)) + clipped
        with pytest.raises(ProtocolError):
            FrameDecoder().feed(frame)

    def test_bad_dispatch_ref_kind_code_raises(self):
        body = (bytes([8]) + struct.pack(">QQB", 1, 2, 9)
                + struct.pack(">III", 0, 2, 2) + pickle.dumps(None)[:2])
        frame = struct.pack(">4sBI", b"GRSP", PROTOCOL_VERSION,
                            len(body)) + body
        with pytest.raises(ProtocolError, match="kind code"):
            FrameDecoder().feed(frame)

    def test_trailing_bytes_after_heartbeat_raise(self):
        body = encode(Heartbeat(node_id="n", load=0.5))[
            struct.calcsize(">4sBI"):] + b"JUNK"
        frame = struct.pack(">4sBI", b"GRSP", PROTOCOL_VERSION,
                            len(body)) + body
        with pytest.raises(ProtocolError, match="HEARTBEAT"):
            FrameDecoder().feed(frame)

    def test_unpicklable_payload_raises_on_encode(self):
        message = Dispatch(request_id=1, kind="task",
                           payload=(lambda x: x,))
        with pytest.raises(ProtocolError, match="pickle"):
            encode(message)

    def test_unpicklable_ref_args_raise_on_encode(self):
        message = DispatchRef(request_id=1, payload_id=1, kind="task",
                              args=lambda x: x)
        with pytest.raises(ProtocolError, match="pickle"):
            encode(message)

    def test_unknown_kind_raises_on_encode(self):
        message = DispatchRef(request_id=1, payload_id=1, kind="warp",
                              args=None)
        with pytest.raises(ProtocolError, match="kind"):
            encode(message)

    def test_non_message_raises_on_encode(self):
        with pytest.raises(ProtocolError, match="not a protocol message"):
            encode(("tuple", "is", "not", "a", "message"))


class TestDecoderThroughput:
    def test_many_small_frames_decode_in_linear_time(self):
        # Regression pin for the O(n²) compact-per-frame decoder: 100k
        # heartbeat frames arriving as one burst must decode in well under
        # the bound (linear decode takes < 1 s; the quadratic byte-moving
        # version took minutes).  Generous bound: slow shared CI machines.
        count = 100_000
        blob = encode(Heartbeat(node_id="node/throughput", load=0.5)) * count
        decoder = FrameDecoder()
        started = time.perf_counter()
        decoded = []
        chunk = 1 << 16
        for offset in range(0, len(blob), chunk):
            decoded.extend(decoder.feed(blob[offset:offset + chunk]))
        elapsed = time.perf_counter() - started
        assert len(decoded) == count
        assert decoder.pending_bytes == 0
        assert elapsed < 5.0, (
            f"decoding {count} small frames took {elapsed:.1f}s — the "
            "frame decoder has gone super-linear again"
        )
