"""Property tests for the cluster wire protocol.

The codec's contract, pinned with Hypothesis:

* **Round-trip identity** — any sequence of protocol messages, encoded,
  concatenated and re-fed to a :class:`repro.cluster.protocol.FrameDecoder`
  at *arbitrary byte boundaries* (one byte at a time, random splits, one
  giant buffer — TCP guarantees none of them), decodes to the identical
  message sequence.
* **Clean failure** — truncated streams, corrupt magic, unsupported
  versions, oversized lengths, garbage bodies and unknown type codes all
  raise :class:`repro.exceptions.ProtocolError` instead of hanging,
  guessing or returning partial nonsense.
"""

from __future__ import annotations

import pickle
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    Dispatch,
    FrameDecoder,
    Goodbye,
    Heartbeat,
    Hello,
    Result,
    Welcome,
    encode,
)
from repro.exceptions import ProtocolError

# Pickle round-trips must preserve equality, so keep payload atoms to
# types with well-defined ==; no NaNs.
_atoms = (st.none() | st.booleans() | st.integers()
          | st.floats(allow_nan=False, allow_infinity=True)
          | st.text(max_size=40) | st.binary(max_size=40))
_payloads = st.recursive(
    _atoms,
    lambda inner: st.lists(inner, max_size=4).map(tuple)
    | st.lists(inner, max_size=4)
    | st.dictionaries(st.text(max_size=8), inner, max_size=4),
    max_leaves=12,
)

_node_ids = st.text(min_size=1, max_size=24)

_messages = st.one_of(
    st.builds(Hello, node_id=_node_ids, host=st.text(max_size=24),
              pid=st.integers(1, 2**31 - 1), cpus=st.integers(1, 4096),
              protocol=st.just(PROTOCOL_VERSION)),
    st.builds(Welcome, node_id=_node_ids),
    st.builds(Dispatch, request_id=st.integers(0, 2**62),
              kind=st.sampled_from(["task", "chunk", "stage"]),
              payload=st.lists(_payloads, max_size=3).map(tuple)),
    st.builds(Result, request_id=st.integers(0, 2**62), ok=st.booleans(),
              value=_payloads, error=st.none() | st.text(max_size=40)),
    st.builds(Heartbeat, node_id=_node_ids,
              load=st.floats(0, 1, allow_nan=False)),
    st.builds(Goodbye, node_id=_node_ids, reason=st.text(max_size=40)),
)


class TestRoundTrip:
    @given(messages=st.lists(_messages, max_size=8), data=st.data())
    @settings(max_examples=150, deadline=None)
    def test_encode_frame_split_decode_is_identity(self, messages, data):
        blob = b"".join(encode(m) for m in messages)
        # Split the byte stream at arbitrary boundaries, like TCP would.
        cuts = sorted(data.draw(
            st.lists(st.integers(0, len(blob)), max_size=12),
            label="split points",
        ))
        decoder = FrameDecoder()
        decoded = []
        previous = 0
        for cut in cuts + [len(blob)]:
            decoded.extend(decoder.feed(blob[previous:cut]))
            previous = cut
        decoder.at_eof()        # the stream ended on a frame boundary
        assert decoded == messages

    @given(message=_messages)
    @settings(max_examples=100, deadline=None)
    def test_byte_at_a_time_feeding(self, message):
        blob = encode(message)
        decoder = FrameDecoder()
        decoded = []
        for i in range(len(blob)):
            decoded.extend(decoder.feed(blob[i:i + 1]))
        assert decoded == [message]
        assert decoder.pending_bytes == 0


class TestCleanFailure:
    @given(message=_messages, drop=st.integers(min_value=1))
    @settings(max_examples=100, deadline=None)
    def test_truncated_stream_raises_at_eof(self, message, drop):
        blob = encode(message)
        # Keep at least one byte: an empty stream is legitimately clean.
        truncated = blob[:-min(drop, len(blob) - 1)]
        decoder = FrameDecoder()
        assert decoder.feed(truncated) == []    # never a partial message
        with pytest.raises(ProtocolError, match="mid-frame"):
            decoder.at_eof()

    @given(message=_messages, flip=st.integers(0, 3))
    @settings(max_examples=50, deadline=None)
    def test_corrupt_magic_raises(self, message, flip):
        blob = bytearray(encode(message))
        blob[flip] ^= 0xFF
        with pytest.raises(ProtocolError, match="magic"):
            FrameDecoder().feed(bytes(blob))

    @given(message=_messages,
           version=st.integers(0, 255).filter(lambda v: v != PROTOCOL_VERSION))
    @settings(max_examples=50, deadline=None)
    def test_unsupported_version_raises(self, message, version):
        blob = bytearray(encode(message))
        blob[4] = version
        with pytest.raises(ProtocolError, match="version"):
            FrameDecoder().feed(bytes(blob))

    def test_oversized_length_raises_before_buffering(self):
        header = struct.pack(">4sBI", b"GRSP", PROTOCOL_VERSION,
                             MAX_FRAME_BYTES + 1)
        with pytest.raises(ProtocolError, match="limit"):
            FrameDecoder().feed(header)

    @given(garbage=st.binary(min_size=1, max_size=64))
    @settings(max_examples=50, deadline=None)
    def test_garbage_body_raises(self, garbage):
        frame = struct.pack(">4sBI", b"GRSP", PROTOCOL_VERSION,
                            len(garbage)) + garbage
        decoder = FrameDecoder()
        try:
            messages = decoder.feed(frame)
        except ProtocolError:
            return      # the common case: undecodable/unknown-type body
        # Astronomically unlikely: random bytes that pickle to a valid
        # (code, values) pair must still yield real protocol messages.
        assert all(type(m).__module__ == "repro.cluster.protocol"
                   for m in messages)

    def test_unknown_type_code_raises(self):
        body = pickle.dumps((250, ("nope",)))
        frame = struct.pack(">4sBI", b"GRSP", PROTOCOL_VERSION,
                            len(body)) + body
        with pytest.raises(ProtocolError, match="unknown message type"):
            FrameDecoder().feed(frame)

    def test_wrong_arity_raises(self):
        body = pickle.dumps((2, ("a", "b", "c")))    # Welcome takes 1 field
        frame = struct.pack(">4sBI", b"GRSP", PROTOCOL_VERSION,
                            len(body)) + body
        with pytest.raises(ProtocolError, match="malformed Welcome"):
            FrameDecoder().feed(frame)

    def test_unpicklable_payload_raises_on_encode(self):
        message = Dispatch(request_id=1, kind="task",
                           payload=(lambda x: x,))
        with pytest.raises(ProtocolError, match="pickle"):
            encode(message)

    def test_non_message_raises_on_encode(self):
        with pytest.raises(ProtocolError, match="not a protocol message"):
            encode(("tuple", "is", "not", "a", "message"))