"""``chunk_size="auto"``: dispatch-overhead-derived farm chunking.

:func:`~repro.core.plan_executor.resolve_auto_chunk` sizes farm chunks so
per-dispatch overhead stays under ~10% of a chunk's compute time, judged
from the calibration sample's mean task duration against the backend's
*measured* per-dispatch overhead — cheap tasks get batched, expensive
tasks keep the paper's task-at-a-time self-scheduling.  These tests pin
the formula, its clamps and fallbacks, the configuration plumbing, and
an end-to-end ``chunk_size="auto"`` run.
"""

from __future__ import annotations

import math

import pytest

from repro.backends import ThreadBackend
from repro.core.calibration import CalibrationObservation, CalibrationReport
from repro.core.grasp import Grasp
from repro.core.parameters import ExecutionConfig, GraspConfig
from repro.core.plan_executor import resolve_auto_chunk
from repro.core.ranking import RankingMode
from repro.exceptions import ConfigurationError
from repro.grid.topology import GridBuilder


class _StubBackend:
    def __init__(self, overhead):
        self._overhead = overhead

    def dispatch_overhead(self) -> float:
        if isinstance(self._overhead, Exception):
            raise self._overhead
        return self._overhead


def _report(durations):
    observations = [
        CalibrationObservation(node_id="g/n0", task_id=i, cost=1.0,
                               duration=duration, unit_time=duration,
                               load=0.0, bandwidth=1e9, started=0.0,
                               finished=duration)
        for i, duration in enumerate(durations)
    ]
    return CalibrationReport(started=0.0, finished=1.0,
                             mode=RankingMode.TIME_ONLY,
                             observations=observations,
                             chosen=["g/n0"])


class TestResolveAutoChunk:
    def test_overhead_to_ten_percent_of_mean_duration(self):
        # overhead 10ms, mean duration 1ms: chunk = ceil(10 / 0.1) = 100.
        chunk = resolve_auto_chunk(_StubBackend(0.010), _report([0.001] * 4),
                                   n_tasks=1000, n_workers=2)
        assert chunk == 100

    def test_formula_uses_the_mean_duration(self):
        durations = [0.001, 0.003]          # mean 2ms
        expected = math.ceil(0.010 / (0.1 * 0.002))
        chunk = resolve_auto_chunk(_StubBackend(0.010), _report(durations),
                                   n_tasks=10_000, n_workers=2)
        assert chunk == expected

    def test_clamped_to_half_share_per_worker(self):
        # Huge overhead: the cap keeps >= 2 chunks per worker so the
        # self-scheduling farm can still balance across nodes.
        chunk = resolve_auto_chunk(_StubBackend(10.0), _report([0.001] * 4),
                                   n_tasks=100, n_workers=5)
        assert chunk == 100 // (2 * 5)

    def test_expensive_tasks_keep_task_at_a_time(self):
        # Overhead is negligible next to the task cost: chunk stays 1.
        chunk = resolve_auto_chunk(_StubBackend(0.0001), _report([1.0] * 4),
                                   n_tasks=1000, n_workers=2)
        assert chunk == 1

    def test_zero_overhead_backend_falls_back_to_one(self):
        assert resolve_auto_chunk(_StubBackend(0.0), _report([0.001]),
                                  n_tasks=100, n_workers=2) == 1

    def test_no_positive_durations_falls_back_to_one(self):
        assert resolve_auto_chunk(_StubBackend(0.010), _report([]),
                                  n_tasks=100, n_workers=2) == 1
        assert resolve_auto_chunk(_StubBackend(0.010), _report([0.0]),
                                  n_tasks=100, n_workers=2) == 1

    def test_probe_failure_falls_back_to_one(self):
        backend = _StubBackend(RuntimeError("no live node"))
        assert resolve_auto_chunk(backend, _report([0.001] * 4),
                                  n_tasks=100, n_workers=2) == 1

    def test_tiny_farm_never_drops_below_one(self):
        chunk = resolve_auto_chunk(_StubBackend(10.0), _report([0.001]),
                                   n_tasks=2, n_workers=4)
        assert chunk == 1


class TestConfigPlumbing:
    def test_auto_is_a_valid_chunk_size(self):
        config = ExecutionConfig(chunk_size="auto")
        assert config.chunk_size == "auto"

    def test_other_strings_are_rejected(self):
        with pytest.raises(ConfigurationError):
            ExecutionConfig(chunk_size="turbo")

    def test_integer_validation_unchanged(self):
        assert ExecutionConfig(chunk_size=8).chunk_size == 8
        with pytest.raises(ConfigurationError):
            ExecutionConfig(chunk_size=0)


def _square(x):
    return x * x


class TestEndToEnd:
    def test_auto_chunk_run_matches_sequential(self):
        grid = (GridBuilder().homogeneous(nodes=2, speed=1.0)
                .named("autogrid").build(seed=0))
        config = GraspConfig(execution=ExecutionConfig(chunk_size="auto"))
        from repro.skeletons.taskfarm import TaskFarm

        backend = ThreadBackend(topology=grid)
        try:
            result = Grasp(skeleton=TaskFarm(worker=_square), grid=grid,
                           config=config, backend=backend).run(
                               inputs=range(40))
            assert result.outputs == [x * x for x in range(40)]
            events = result.compiled.tracer.filter("execution.auto_chunk")
            assert events, "auto chunk resolution must be traced"
            assert events[0].data["chunk_size"] >= 1
        finally:
            backend.close()
