"""Tests for the task-farm skeleton and shared skeleton base classes."""

from __future__ import annotations

import pytest

from repro.exceptions import SkeletonError
from repro.skeletons.base import (
    Skeleton,
    Task,
    TaskResult,
    callable_cost,
    constant_cost,
)
from repro.skeletons.taskfarm import TaskFarm


class TestCostModels:
    def test_constant_cost(self):
        model = constant_cost(3.0)
        assert model("anything") == 3.0

    def test_constant_cost_negative_rejected(self):
        with pytest.raises(SkeletonError):
            constant_cost(-1.0)

    def test_callable_cost(self):
        model = callable_cost(lambda item: item * 2.0)
        assert model(3) == 6.0

    def test_callable_cost_negative_result_rejected(self):
        model = callable_cost(lambda item: -1.0)
        with pytest.raises(SkeletonError):
            model("x")


class TestTask:
    def test_scaled(self):
        task = Task(task_id=0, payload="p", cost=2.0)
        assert task.scaled(3.0).cost == pytest.approx(6.0)
        assert task.cost == 2.0  # original unchanged

    def test_scaled_negative_rejected(self):
        with pytest.raises(SkeletonError):
            Task(task_id=0, payload="p").scaled(-1.0)


class TestTaskResult:
    def test_durations(self):
        result = TaskResult(task_id=0, output=None, node_id="n",
                            submitted=1.0, started=2.0, finished=5.0)
        assert result.duration == pytest.approx(3.0)
        assert result.elapsed == pytest.approx(4.0)


class TestTaskFarm:
    def test_requires_callable_worker(self):
        with pytest.raises(SkeletonError):
            TaskFarm(worker="not-callable")

    def test_properties(self):
        farm = TaskFarm(worker=lambda x: x)
        props = farm.properties
        assert props.name == "taskfarm"
        assert props.redistributable
        assert props.stateless_workers
        assert props.min_nodes == 1
        assert props.monitoring_unit == "task"

    def test_ordered_flag_propagates(self):
        assert TaskFarm(worker=lambda x: x, ordered=True).properties.ordered_output

    def test_make_tasks_assigns_sequential_ids(self):
        farm = TaskFarm(worker=lambda x: x)
        tasks = farm.make_tasks([10, 20, 30])
        assert [t.task_id for t in tasks] == [0, 1, 2]
        assert [t.payload for t in tasks] == [10, 20, 30]

    def test_make_tasks_ids_continue_across_calls(self):
        farm = TaskFarm(worker=lambda x: x)
        farm.make_tasks([1])
        tasks = farm.make_tasks([2])
        assert tasks[0].task_id == 1

    def test_make_tasks_empty_rejected(self):
        with pytest.raises(SkeletonError):
            TaskFarm(worker=lambda x: x).make_tasks([])

    def test_default_cost_is_one(self):
        tasks = TaskFarm(worker=lambda x: x).make_tasks([1, 2])
        assert all(t.cost == 1.0 for t in tasks)

    def test_cost_model_applied(self):
        farm = TaskFarm(worker=lambda x: x, cost_model=lambda item: item * 2.0)
        tasks = farm.make_tasks([1, 5])
        assert [t.cost for t in tasks] == [2.0, 10.0]

    def test_size_models_applied(self):
        farm = TaskFarm(worker=lambda x: x,
                        input_size_model=lambda item: 1000,
                        output_size_model=lambda item: 10)
        task = farm.make_tasks([1])[0]
        assert task.input_bytes == 1000
        assert task.output_bytes == 10

    def test_output_size_fixed(self):
        farm = TaskFarm(worker=lambda x: x, output_size=77)
        assert farm.make_tasks([1])[0].output_bytes == 77

    def test_execute_task_runs_worker(self):
        farm = TaskFarm(worker=lambda x: x * x)
        task = farm.make_tasks([9])[0]
        assert farm.execute_task(task) == 81

    def test_run_sequential_reference(self):
        farm = TaskFarm(worker=lambda x: x + 1)
        assert farm.run_sequential([1, 2, 3]) == [2, 3, 4]

    def test_base_skeleton_is_abstract(self):
        skeleton = Skeleton(name="abstract")
        with pytest.raises(NotImplementedError):
            skeleton.make_tasks([1])
        with pytest.raises(NotImplementedError):
            skeleton.run_sequential([1])
        with pytest.raises(NotImplementedError):
            _ = skeleton.properties

    def test_empty_name_rejected(self):
        with pytest.raises(SkeletonError):
            TaskFarm(worker=lambda x: x, name="")
