"""Integration tests for the Grasp facade (all four phases end to end)."""

from __future__ import annotations

import pytest

from repro.core.grasp import Grasp, GraspResult
from repro.core.parameters import CalibrationConfig, ExecutionConfig, GraspConfig
from repro.core.phases import Phase
from repro.core.program import SkeletalProgram
from repro.core.ranking import RankingMode
from repro.exceptions import CompilationError, SkeletonError
from repro.grid.topology import GridBuilder
from repro.skeletons.composition import FarmOfPipelines, PipelineOfFarms
from repro.skeletons.divide_conquer import DivideAndConquer
from repro.skeletons.map import MapSkeleton
from repro.skeletons.pipeline import Pipeline, Stage
from repro.skeletons.reduce import ReduceSkeleton
from repro.skeletons.taskfarm import TaskFarm


class TestFarmEndToEnd:
    def test_outputs_match_sequential_semantics(self, dynamic_grid):
        farm = TaskFarm(worker=lambda x: x * x + 1)
        result = Grasp(skeleton=farm, grid=dynamic_grid).run(range(80))
        assert result.outputs == [x * x + 1 for x in range(80)]

    def test_result_contents(self, hetero_grid):
        farm = TaskFarm(worker=lambda x: x)
        result = Grasp(skeleton=farm, grid=hetero_grid).run(range(40))
        assert isinstance(result, GraspResult)
        assert result.total_tasks == 40
        assert result.makespan > 0
        assert result.chosen_nodes
        assert result.recalibrations >= 0
        assert sum(result.per_node_counts().values()) == 40
        assert result.trace.filter("phase.calibration.start")

    def test_phase_timeline_is_well_formed(self, hetero_grid):
        farm = TaskFarm(worker=lambda x: x)
        result = Grasp(skeleton=farm, grid=hetero_grid).run(range(30))
        result.phases.validate()
        durations = result.phase_durations()
        assert durations["calibration"] > 0
        assert durations["execution"] > 0
        sequence = result.phases.sequence()
        assert sequence[0] is Phase.PROGRAMMING
        assert sequence[1] is Phase.COMPILATION

    def test_calibration_work_counts_toward_job(self, hetero_grid):
        farm = TaskFarm(worker=lambda x: -x)
        result = Grasp(skeleton=farm, grid=hetero_grid).run(range(25))
        calibration_results = [r for r in result.results if r.during_calibration]
        assert len(calibration_results) == result.calibration.consumed_tasks
        assert calibration_results
        assert result.outputs == [-x for x in range(25)]

    def test_deterministic_given_same_grid_seed(self):
        def build():
            grid = (GridBuilder().heterogeneous(nodes=6, speed_spread=4.0)
                    .with_dynamic_load("randomwalk").build(seed=11))
            return Grasp(TaskFarm(worker=lambda x: x), grid).run(range(50))

        a, b = build(), build()
        assert a.makespan == pytest.approx(b.makespan)
        assert a.chosen_nodes == b.chosen_nodes
        assert a.outputs == b.outputs

    def test_statistical_calibration_modes_run(self, dynamic_grid):
        for mode in (RankingMode.UNIVARIATE, RankingMode.MULTIVARIATE):
            grid = (GridBuilder().heterogeneous(nodes=6, speed_spread=4.0)
                    .with_dynamic_load("randomwalk").build(seed=5))
            config = GraspConfig(calibration=CalibrationConfig(ranking=mode,
                                                               sample_per_node=2))
            result = Grasp(TaskFarm(worker=lambda x: x), grid, config=config).run(range(60))
            assert result.outputs == list(range(60))
            assert result.calibration.mode is mode

    def test_single_node_grid_still_works(self):
        grid = GridBuilder().homogeneous(nodes=1, speed=1.0).build(seed=0)
        result = Grasp(TaskFarm(worker=lambda x: x + 5), grid).run(range(10))
        assert result.outputs == [x + 5 for x in range(10)]

    def test_too_small_grid_for_pipeline_rejected(self):
        grid = GridBuilder().homogeneous(nodes=2).build(seed=0)
        pipe = Pipeline([Stage(lambda x: x) for _ in range(4)])
        with pytest.raises(CompilationError):
            Grasp(pipe, grid).run(range(10))

    def test_explicit_master_node(self, hetero_grid):
        master = hetero_grid.node_ids[3]
        config = GraspConfig(master_node=master)
        result = Grasp(TaskFarm(worker=lambda x: x), hetero_grid, config=config).run(range(20))
        assert result.compiled.master_node == master

    def test_unknown_master_rejected(self, hetero_grid):
        config = GraspConfig(master_node="ghost")
        with pytest.raises(CompilationError):
            Grasp(TaskFarm(worker=lambda x: x), hetero_grid, config=config).run(range(5))


class TestPipelineEndToEnd:
    def test_outputs_match_sequential(self, dynamic_grid, arithmetic_pipeline):
        expected = arithmetic_pipeline.run_sequential(range(40))
        result = Grasp(arithmetic_pipeline, dynamic_grid).run(range(40))
        assert result.outputs == expected

    def test_pipeline_phase_timeline(self, hetero_grid, arithmetic_pipeline):
        result = Grasp(arithmetic_pipeline, hetero_grid).run(range(20))
        result.phases.validate()

    def test_pipeline_needs_items_beyond_calibration(self, hetero_grid):
        pipe = Pipeline([Stage(lambda x: x), Stage(lambda x: x)])
        # 8 nodes consume 8 items in calibration; only inputs > 8 can stream.
        result = Grasp(pipe, hetero_grid).run(range(12))
        assert result.outputs == list(range(12))


class TestExtensionSkeletonsEndToEnd:
    def test_map_skeleton(self, hetero_grid):
        sk = MapSkeleton(fn=lambda block: [v * 2 for v in block], blocks=12)
        result = Grasp(sk, hetero_grid).run(range(120))
        assert result.outputs == [v * 2 for v in range(120)]

    def test_reduce_skeleton(self, hetero_grid):
        sk = ReduceSkeleton(op=lambda a, b: a + b, identity=0, blocks=16)
        result = Grasp(sk, hetero_grid).run(range(200))
        assert result.outputs == sum(range(200))

    def test_divide_and_conquer(self, hetero_grid):
        sk = DivideAndConquer(
            divide=lambda xs: [xs[:len(xs) // 2], xs[len(xs) // 2:]],
            combine=lambda _p, subs: subs[0] + subs[1],
            solve=lambda xs: sum(xs),
            is_trivial=lambda xs: len(xs) <= 8,
            parallel_depth=3,
        )
        problems = [list(range(50)), list(range(10, 90))]
        result = Grasp(sk, hetero_grid).run(problems)
        assert result.outputs == [sum(range(50)), sum(range(10, 90))]

    def test_farm_of_pipelines(self, hetero_grid):
        composed = FarmOfPipelines([Stage(lambda x: x + 1), Stage(lambda x: x * 3)])
        result = Grasp(composed, hetero_grid).run(range(30))
        assert result.outputs == [(x + 1) * 3 for x in range(30)]

    def test_pipeline_of_farms(self, hetero_grid):
        composed = PipelineOfFarms([Stage(lambda x: x + 1), Stage(lambda x: x * 3)])
        config = GraspConfig(execution=ExecutionConfig(replicate_stages=True))
        result = Grasp(composed, hetero_grid, config=config).run(range(30))
        assert result.outputs == [(x + 1) * 3 for x in range(30)]


class TestSkeletalProgram:
    def test_requires_skeleton_instance(self):
        with pytest.raises(SkeletonError):
            SkeletalProgram("not a skeleton")

    def test_pipeline_detection(self, arithmetic_pipeline):
        program = SkeletalProgram(arithmetic_pipeline)
        assert program.is_pipeline
        assert program.pipeline is arithmetic_pipeline
        assert program.min_nodes == 3

    def test_farm_is_not_pipeline(self):
        program = SkeletalProgram(TaskFarm(worker=lambda x: x))
        assert not program.is_pipeline
        with pytest.raises(SkeletonError):
            _ = program.pipeline

    def test_pipeline_tasks_carry_total_cost(self, arithmetic_pipeline):
        program = SkeletalProgram(arithmetic_pipeline)
        tasks = program.make_tasks(range(3))
        assert all(t.cost == pytest.approx(3.0) for t in tasks)

    def test_assemble_passthrough_for_farm(self):
        program = SkeletalProgram(TaskFarm(worker=lambda x: x))
        assert program.assemble([1, 2, 3]) == [1, 2, 3]

    def test_run_sequential_delegates_to_original(self):
        composed = FarmOfPipelines([Stage(lambda x: x + 1)])
        program = SkeletalProgram(composed)
        assert program.run_sequential([1, 2]) == [2, 3]
