"""Property-based tests: chunked dispatch is semantically invisible.

``ExecutionConfig.chunk_size`` exists purely to amortise per-dispatch
overhead (IPC round-trips on the process backend); it must never change
*what* a farm computes.  Hypothesis drives the simulated backend across
random farm sizes, grid shapes, adaptation thresholds and failure
schedules, asserting that a chunked run (``chunk_size > 1``) and the
unchunked run of the same scenario produce identical result sets and
per-task outcomes — including runs where scheduled node deaths force task
loss, re-enqueueing and failover mid-stream.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Grasp, GraspConfig, TaskFarm
from repro.grid.failures import PermanentFailure
from repro.grid.topology import GridBuilder


def _worker(x):
    return 3 * x + 1


def _cost(x):
    # Mildly heterogeneous task costs so chunks span unequal work.
    return 1.0 + (x % 5)


@st.composite
def chunking_scenarios(draw):
    n_tasks = draw(st.integers(min_value=3, max_value=36))
    n_nodes = draw(st.integers(min_value=2, max_value=6))
    chunk_size = draw(st.integers(min_value=2, max_value=5))
    grid_seed = draw(st.integers(min_value=0, max_value=999))
    threshold = draw(st.sampled_from([0.3, 1.0, 3.0]))

    # Kill up to n_nodes - 2 of the non-master nodes at random times, so at
    # least the master and one worker survive and the job can complete.
    max_victims = max(0, n_nodes - 2)
    n_victims = draw(st.integers(min_value=0, max_value=max_victims))
    victim_indices = draw(
        st.lists(st.integers(min_value=1, max_value=n_nodes - 1),
                 min_size=n_victims, max_size=n_victims, unique=True)
    )
    death_times = draw(
        st.lists(st.floats(min_value=0.5, max_value=40.0,
                           allow_nan=False, allow_infinity=False),
                 min_size=n_victims, max_size=n_victims)
    )
    return {
        "n_tasks": n_tasks,
        "n_nodes": n_nodes,
        "chunk_size": chunk_size,
        "grid_seed": grid_seed,
        "threshold": threshold,
        "deaths": dict(zip(victim_indices, death_times)),
    }


def _run(scenario, chunk_size: int):
    grid = (
        GridBuilder()
        .heterogeneous(nodes=scenario["n_nodes"], speed_spread=3.0)
        .named("chunk-prop")
        .build(seed=scenario["grid_seed"])
    )
    if scenario["deaths"]:
        grid = grid.with_failure_model(PermanentFailure(failures={
            grid.node_ids[index]: when
            for index, when in scenario["deaths"].items()
        }))
    config = GraspConfig.adaptive(threshold_factor=scenario["threshold"])
    config.execution.chunk_size = chunk_size
    farm = TaskFarm(worker=_worker, cost_model=_cost)
    return Grasp(skeleton=farm, grid=grid, config=config,
                 backend="simulated").run(inputs=range(scenario["n_tasks"]))


class TestChunkingInvariance:
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(scenario=chunking_scenarios())
    def test_chunked_matches_unchunked(self, scenario):
        unchunked = _run(scenario, chunk_size=1)
        chunked = _run(scenario, chunk_size=scenario["chunk_size"])

        reference = [_worker(x) for x in range(scenario["n_tasks"])]
        assert unchunked.outputs == reference
        assert chunked.outputs == reference

        # Identical result sets: every task completes exactly once in both.
        assert unchunked.total_tasks == scenario["n_tasks"]
        assert chunked.total_tasks == scenario["n_tasks"]

        # Identical per-task outcomes: same task -> output mapping (node
        # assignment and timing may legitimately differ across batching).
        unchunked_by_task = {r.task_id: r.output for r in unchunked.results}
        chunked_by_task = {r.task_id: r.output for r in chunked.results}
        assert unchunked_by_task == chunked_by_task

    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(scenario=chunking_scenarios())
    def test_chunk_size_one_config_is_identity(self, scenario):
        # chunk_size=1 through the chunk plumbing must equal the scenario's
        # own unchunked run bit-for-bit (same virtual times, same nodes).
        a = _run(scenario, chunk_size=1)
        b = _run(scenario, chunk_size=1)
        assert a.makespan == b.makespan
        assert [(r.task_id, r.node_id, r.finished) for r in a.results] == \
            [(r.task_id, r.node_id, r.finished) for r in b.results]
