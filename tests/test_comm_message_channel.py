"""Tests for messages, size estimation and channels."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.comm.channel import Channel
from repro.comm.message import ENVELOPE_BYTES, Message, estimate_size
from repro.exceptions import CommunicationError


class TestEstimateSize:
    def test_none_is_envelope_only(self):
        assert estimate_size(None) == ENVELOPE_BYTES

    def test_numpy_array_uses_nbytes(self):
        arr = np.zeros(1000, dtype=np.float64)
        assert estimate_size(arr) == arr.nbytes + ENVELOPE_BYTES

    def test_bytes_and_str(self):
        assert estimate_size(b"abcd") == 4 + ENVELOPE_BYTES
        assert estimate_size("abcd") == 4 + ENVELOPE_BYTES

    def test_numeric_list_fast_path(self):
        assert estimate_size([1, 2, 3, 4]) == 32 + ENVELOPE_BYTES

    def test_scalar(self):
        assert estimate_size(3.14) > 0

    def test_arbitrary_object_via_pickle(self):
        size = estimate_size({"a": list(range(100))})
        assert size > ENVELOPE_BYTES

    def test_unpicklable_object_falls_back(self):
        lock = threading.Lock()
        assert estimate_size(lock) >= ENVELOPE_BYTES

    def test_larger_payload_larger_estimate(self):
        small = estimate_size(np.zeros(10))
        large = estimate_size(np.zeros(10_000))
        assert large > small


class TestMessage:
    def test_make_estimates_size(self):
        message = Message.make(src=0, dst=1, payload="hello")
        assert message.nbytes == estimate_size("hello")

    def test_make_with_explicit_size(self):
        message = Message.make(src=0, dst=1, payload="hello", nbytes=5000)
        assert message.nbytes == 5000

    def test_latency(self):
        message = Message(src=0, dst=1, payload=None, sent_at=1.0, delivered_at=3.5)
        assert message.latency == pytest.approx(2.5)


class TestChannel:
    def test_fifo_order(self):
        channel = Channel()
        for i in range(3):
            channel.put(Message.make(0, 1, payload=i))
        assert [channel.get().payload for _ in range(3)] == [0, 1, 2]

    def test_tag_selective_receive(self):
        channel = Channel()
        channel.put(Message.make(0, 1, payload="a", tag=1))
        channel.put(Message.make(0, 1, payload="b", tag=2))
        assert channel.get(tag=2).payload == "b"
        assert channel.get(tag=1).payload == "a"

    def test_get_timeout(self):
        channel = Channel()
        with pytest.raises(CommunicationError):
            channel.get(timeout=0.05)

    def test_len(self):
        channel = Channel()
        assert len(channel) == 0
        channel.put(Message.make(0, 1, payload=None))
        assert len(channel) == 1

    def test_capacity_blocks_until_timeout(self):
        channel = Channel(capacity=1)
        channel.put(Message.make(0, 1, payload=None))
        with pytest.raises(CommunicationError):
            channel.put(Message.make(0, 1, payload=None), timeout=0.05)

    def test_invalid_capacity(self):
        with pytest.raises(CommunicationError):
            Channel(capacity=0)

    def test_closed_channel_rejects_put(self):
        channel = Channel()
        channel.close()
        assert channel.closed
        with pytest.raises(CommunicationError):
            channel.put(Message.make(0, 1, payload=None))

    def test_closed_channel_wakes_receiver(self):
        channel = Channel()
        errors = []

        def receiver():
            try:
                channel.get(timeout=5.0)
            except CommunicationError as exc:
                errors.append(exc)

        thread = threading.Thread(target=receiver)
        thread.start()
        channel.close()
        thread.join(timeout=2.0)
        assert not thread.is_alive()
        assert errors

    def test_threaded_producer_consumer(self):
        channel = Channel()
        received = []

        def producer():
            for i in range(50):
                channel.put(Message.make(0, 1, payload=i))

        def consumer():
            for _ in range(50):
                received.append(channel.get(timeout=5.0).payload)

        threads = [threading.Thread(target=producer), threading.Thread(target=consumer)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=5.0)
        assert received == list(range(50))
