"""Tests for the load/bandwidth forecasters."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.monitor.forecasters import (
    AdaptiveForecaster,
    ExponentialSmoothingForecaster,
    LastValueForecaster,
    MeanForecaster,
    MedianForecaster,
    SlidingWindowForecaster,
    make_forecaster,
)
from repro.monitor.history import TimeSeries


def series_of(values) -> TimeSeries:
    series = TimeSeries()
    for i, v in enumerate(values):
        series.append(float(i), float(v))
    return series


class TestBasicForecasters:
    def test_last_value(self):
        assert LastValueForecaster().predict(series_of([1, 2, 7])) == 7.0

    def test_mean(self):
        assert MeanForecaster().predict(series_of([2, 4, 6])) == pytest.approx(4.0)

    def test_sliding_window(self):
        f = SlidingWindowForecaster(window=2)
        assert f.predict(series_of([10, 1, 3])) == pytest.approx(2.0)

    def test_median_robust_to_burst(self):
        f = MedianForecaster(window=5)
        assert f.predict(series_of([0.1, 0.1, 0.9, 0.1, 0.1])) == pytest.approx(0.1)

    def test_ewma_weights_recent_values(self):
        f = ExponentialSmoothingForecaster(alpha=0.9)
        prediction = f.predict(series_of([0.0, 0.0, 1.0]))
        assert prediction > 0.8

    def test_ewma_low_alpha_smooths(self):
        f = ExponentialSmoothingForecaster(alpha=0.1)
        prediction = f.predict(series_of([0.0, 0.0, 1.0]))
        assert prediction < 0.2

    @pytest.mark.parametrize("cls", [LastValueForecaster, MeanForecaster])
    def test_empty_series_gives_nan(self, cls):
        assert math.isnan(cls().predict(TimeSeries()))

    def test_window_empty_series(self):
        assert math.isnan(SlidingWindowForecaster().predict(TimeSeries()))
        assert math.isnan(MedianForecaster().predict(TimeSeries()))
        assert math.isnan(ExponentialSmoothingForecaster().predict(TimeSeries()))

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            SlidingWindowForecaster(window=0)
        with pytest.raises(ConfigurationError):
            MedianForecaster(window=0)
        with pytest.raises(ConfigurationError):
            ExponentialSmoothingForecaster(alpha=0.0)
        with pytest.raises(ConfigurationError):
            ExponentialSmoothingForecaster(alpha=1.5)


class TestEvaluate:
    def test_persistence_error_on_constant_series_is_zero(self):
        assert LastValueForecaster().evaluate([3.0, 3.0, 3.0, 3.0]) == 0.0

    def test_error_positive_on_varying_series(self):
        assert LastValueForecaster().evaluate([0.0, 1.0, 0.0, 1.0]) == pytest.approx(1.0)

    def test_too_short_series_gives_nan(self):
        assert math.isnan(MeanForecaster().evaluate([1.0]))


class TestAdaptiveForecaster:
    def test_picks_persistence_for_trending_series(self):
        # A steadily increasing series: persistence beats the long mean.
        values = list(np.linspace(0.0, 1.0, 40))
        adaptive = AdaptiveForecaster()
        best = adaptive.best(series_of(values))
        prediction = adaptive.predict(series_of(values))
        long_mean_error = MeanForecaster().evaluate(values)
        assert best.evaluate(values) <= long_mean_error
        assert prediction == pytest.approx(1.0, abs=0.15)

    def test_errors_reports_all_candidates(self):
        adaptive = AdaptiveForecaster()
        errors = adaptive.errors(series_of([0.1, 0.2, 0.3, 0.4]))
        assert len(errors) == len(adaptive.candidates)

    def test_empty_series_falls_back_to_first_candidate(self):
        adaptive = AdaptiveForecaster()
        assert adaptive.best(TimeSeries()) is adaptive.candidates[0]

    def test_custom_candidates(self):
        adaptive = AdaptiveForecaster(candidates=[MeanForecaster()])
        assert adaptive.predict(series_of([1.0, 3.0])) == pytest.approx(2.0)

    def test_no_candidates_rejected(self):
        with pytest.raises(ConfigurationError):
            AdaptiveForecaster(candidates=[])

    def test_adaptive_never_much_worse_than_best_candidate(self):
        rng = np.random.default_rng(0)
        values = list(0.3 + 0.1 * rng.standard_normal(60))
        adaptive = AdaptiveForecaster()
        series = series_of(values)
        best_error = min(
            c.evaluate(values) for c in adaptive.candidates
            if not math.isnan(c.evaluate(values))
        )
        chosen_error = adaptive.best(series).evaluate(values)
        assert chosen_error <= best_error + 1e-12


def naive_ewma(values, alpha: float) -> float:
    """The historical O(n) replay the incremental predict must reproduce."""
    estimate = values[0]
    for value in values[1:]:
        estimate = alpha * value + (1.0 - alpha) * estimate
    return float(estimate)


class NaiveAdaptive(AdaptiveForecaster):
    """The historical replay-everything spelling of predict."""

    def predict(self, series: TimeSeries) -> float:
        return self.best(series).predict(series)


class TestIncrementalStateRegression:
    """Incremental predicts must equal the naive full-history replays.

    The naive implementations replayed the whole series on every call —
    O(n²) across a run; the incremental state keyed on the series' append
    counter must be an invisible optimisation.
    """

    def test_ewma_matches_naive_at_every_length(self):
        rng = np.random.default_rng(42)
        forecaster = ExponentialSmoothingForecaster(alpha=0.3)
        series = TimeSeries(capacity=64)
        for step, value in enumerate(rng.random(200)):
            series.append(float(step), float(value))
            assert forecaster.predict(series) == naive_ewma(
                series.values(), 0.3
            ), f"diverged at length {step + 1}"

    def test_ewma_repeated_predicts_are_stable(self):
        forecaster = ExponentialSmoothingForecaster(alpha=0.5)
        series = series_of([1.0, 2.0, 4.0])
        first = forecaster.predict(series)
        assert forecaster.predict(series) == first
        series.append(3.0, 8.0)
        assert forecaster.predict(series) == naive_ewma(series.values(), 0.5)

    def test_ewma_interleaved_series_keep_separate_state(self):
        forecaster = ExponentialSmoothingForecaster(alpha=0.3)
        a = series_of([1.0, 2.0])
        b = series_of([10.0, 20.0, 40.0])
        assert forecaster.predict(a) == naive_ewma(a.values(), 0.3)
        assert forecaster.predict(b) == naive_ewma(b.values(), 0.3)
        a.append(2.0, 4.0)
        assert forecaster.predict(a) == naive_ewma(a.values(), 0.3)

    def test_adaptive_matches_naive_at_every_length(self):
        rng = np.random.default_rng(7)
        incremental = AdaptiveForecaster()
        naive = NaiveAdaptive()
        series = TimeSeries(capacity=256)
        # A regime change so the best candidate flips mid-series.
        values = np.concatenate([rng.normal(1.0, 0.05, 40),
                                 np.linspace(1.0, 5.0, 40)])
        for step, value in enumerate(values):
            series.append(float(step), float(value))
            got = incremental.predict(series)
            want = naive.predict(series)
            assert got == want, f"diverged at length {step + 1}"

    def test_adaptive_matches_naive_under_eviction(self):
        rng = np.random.default_rng(11)
        incremental = AdaptiveForecaster()
        naive = NaiveAdaptive()
        series = TimeSeries(capacity=24)
        for step, value in enumerate(rng.random(60)):
            series.append(float(step), float(value))
            assert incremental.predict(series) == naive.predict(series)

    def test_adaptive_constant_series_ties_fall_to_first_candidate(self):
        incremental = AdaptiveForecaster()
        naive = NaiveAdaptive()
        series = series_of([0.4] * 12)
        assert incremental.predict(series) == naive.predict(series) == 0.4


class TestFactory:
    @pytest.mark.parametrize("kind", ["last", "mean", "window", "median", "ewma", "adaptive"])
    def test_factory_builds_each_kind(self, kind):
        assert make_forecaster(kind).kind == kind

    def test_factory_with_kwargs(self):
        f = make_forecaster("ewma", alpha=0.5)
        assert isinstance(f, ExponentialSmoothingForecaster)
        assert f.alpha == 0.5

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            make_forecaster("oracle")
