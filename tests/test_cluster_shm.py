"""The shared-memory data plane on the cluster transport.

Same-host worker agents negotiate the ``shm`` capability at
HELLO/WELCOME and then ship large arguments and results as ``grasp-*``
segment descriptors through the existing v2 frames — which lifts the
64MiB inline frame cap on local paths.  Remote-style (shm-off) workers
keep the classic inline frames bit-identically, and an oversized inline
result fails its one task with an actionable error instead of poisoning
the connection.  Worker death while argument segments are in flight must
release every coordinator-owned segment.

Payload functions are module-level (the picklable-payload contract);
LocalCluster propagates ``sys.path`` so the agents can import them.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.backends.shm import SEGMENT_PREFIX
from repro.cluster import LocalCluster
from repro.cluster.protocol import PROTOCOL_VERSION, FrameDecoder, Hello, Welcome, encode
from repro.skeletons.base import Task

OVERSIZED_BYTES = 72 * 1024 * 1024       # over the 64MiB inline frame cap


def _double_task(task: Task):
    return task.payload * 2


def _oversized_result(task: Task):
    return b"y" * OVERSIZED_BYTES


def _sleep_forever(task: Task):  # pragma: no cover - killed mid-task
    time.sleep(30.0)
    return None


def leaked_segments():
    try:
        return sorted(n for n in os.listdir("/dev/shm")
                      if n.startswith(SEGMENT_PREFIX))
    except OSError:  # pragma: no cover - non-POSIX-shm host
        return []


@pytest.fixture(autouse=True)
def clean_shm():
    """Start from a clean slate so one failure cannot cascade leaks."""
    for name in leaked_segments():
        try:
            os.unlink(os.path.join("/dev/shm", name))
        except OSError:
            pass
    yield


def _decode_roundtrip(message):
    decoder = FrameDecoder()
    messages = decoder.feed(encode(message))
    assert len(messages) == 1
    return messages[0]


class TestCapabilityNegotiation:
    def test_hello_and_welcome_default_shm_off(self):
        # Frames from peers predating the field decode to shm=False.
        hello = Hello(node_id="n0", host="h", pid=1, cpus=2)
        assert hello.shm is False
        assert Welcome(node_id="n0").shm is False

    def test_shm_flag_survives_the_wire(self):
        hello = _decode_roundtrip(Hello(node_id="n0", host="h", pid=1,
                                        cpus=2, shm=True))
        assert hello.shm is True
        assert hello.protocol == PROTOCOL_VERSION
        welcome = _decode_roundtrip(Welcome(node_id="n0", shm=True))
        assert welcome.shm is True

    def test_local_cluster_advertises_shm_by_default(self):
        with LocalCluster(workers=1) as cluster:
            assert cluster.coordinator.shm_threshold > 0
            conn = next(iter(cluster.coordinator._workers.values()))
            assert conn.shm is True

    def test_threshold_zero_disables_negotiation(self):
        with LocalCluster(workers=1, shm_threshold=0) as cluster:
            assert cluster.coordinator.shm_threshold == 0
            conn = next(iter(cluster.coordinator._workers.values()))
            assert conn.shm is False


class TestClusterDataPlane:
    def test_large_numpy_roundtrip_and_writable_result(self):
        arr = np.arange(512 * 1024, dtype=np.float64)       # 4 MiB
        with LocalCluster(workers=2) as cluster:
            backend = cluster.backend()
            try:
                nodes = backend.available_nodes(0.0)
                outcome = backend.dispatch(
                    Task(task_id=0, payload=arr), nodes[0], _double_task,
                    master_node=nodes[0], at_time=0.0,
                ).outcome()
                assert not outcome.lost
                assert np.array_equal(outcome.output, arr * 2)
                outcome.output[0] = -1.0        # private writable copy
                assert cluster.coordinator.shm_segment_count() == 0
            finally:
                backend.close()
        assert leaked_segments() == []

    def test_chunk_of_large_payloads(self):
        arr = np.arange(256 * 1024, dtype=np.float64)       # 2 MiB each
        with LocalCluster(workers=2) as cluster:
            backend = cluster.backend()
            try:
                nodes = backend.available_nodes(0.0)
                tasks = [Task(task_id=i, payload=arr + i) for i in range(4)]
                chunk = backend.dispatch_chunk(
                    tasks, nodes[-1], _double_task,
                    master_node=nodes[0], at_time=0.0,
                ).outcome()
                for i, outcome in enumerate(chunk.outcomes):
                    assert np.array_equal(outcome.output, (arr + i) * 2)
            finally:
                backend.close()
        assert leaked_segments() == []

    def test_result_over_frame_cap_travels_via_shm(self):
        with LocalCluster(workers=1) as cluster:
            backend = cluster.backend()
            try:
                nodes = backend.available_nodes(0.0)
                outcome = backend.dispatch(
                    Task(task_id=0, payload=None), nodes[0],
                    _oversized_result, master_node=nodes[0], at_time=0.0,
                ).outcome()
                assert not outcome.lost
                assert len(outcome.output) == OVERSIZED_BYTES
                assert outcome.output == b"y" * OVERSIZED_BYTES
            finally:
                backend.close()
        assert leaked_segments() == []

    def test_shm_off_matches_shm_on_bit_identically(self):
        arr = np.arange(384 * 1024, dtype=np.float64)       # 3 MiB
        outputs = {}
        for label, threshold in (("on", None), ("off", 0)):
            with LocalCluster(workers=1, shm_threshold=threshold) as cluster:
                backend = cluster.backend()
                try:
                    nodes = backend.available_nodes(0.0)
                    outcome = backend.dispatch(
                        Task(task_id=0, payload=arr), nodes[0],
                        _double_task, master_node=nodes[0], at_time=0.0,
                    ).outcome()
                    outputs[label] = outcome.output
                finally:
                    backend.close()
        assert outputs["on"].dtype == outputs["off"].dtype
        assert outputs["on"].tobytes() == outputs["off"].tobytes()
        assert leaked_segments() == []


class TestOversizedInlineResult:
    def test_fails_the_task_with_actionable_error(self):
        # Regression: a >64MiB inline result on a shm-less connection used
        # to surface as an opaque worker-side ProtocolError repr; it must
        # fail its one task with a clear remedy instead.
        with LocalCluster(workers=1, shm_threshold=0) as cluster:
            backend = cluster.backend()
            try:
                nodes = backend.available_nodes(0.0)
                handle = backend.dispatch(
                    Task(task_id=0, payload=None), nodes[0],
                    _oversized_result, master_node=nodes[0], at_time=0.0,
                )
                with pytest.raises(Exception) as excinfo:
                    handle.outcome()
                message = str(excinfo.value)
                assert ("result exceeds frame cap — enable shm or "
                        "chunk smaller") in message
                # The connection survives: the next dispatch succeeds.
                ok = backend.dispatch(
                    Task(task_id=1, payload=21), nodes[0], _double_task,
                    master_node=nodes[0], at_time=0.0,
                ).outcome()
                assert ok.output == 42
            finally:
                backend.close()
        assert leaked_segments() == []


class TestWorkerDeathUnderShm:
    def test_killed_worker_releases_coordinator_segments(self):
        arr = np.ones(1024 * 1024, dtype=np.uint8)          # 1 MiB args
        with LocalCluster(workers=2, shm_threshold=1024) as cluster:
            backend = cluster.backend()
            try:
                nodes = backend.available_nodes(0.0)
                victim = nodes[0]
                handle = backend.dispatch(
                    Task(task_id=0, payload=arr), victim, _sleep_forever,
                    master_node=nodes[-1], at_time=0.0,
                )
                deadline = time.monotonic() + 5.0
                while (cluster.coordinator.shm_segment_count() == 0
                       and time.monotonic() < deadline):
                    time.sleep(0.02)
                assert cluster.coordinator.shm_segment_count() >= 1
                cluster.kill_worker(victim)
                deadline = time.monotonic() + 10.0
                while (cluster.coordinator.shm_segment_count() > 0
                       and time.monotonic() < deadline):
                    time.sleep(0.02)
                assert cluster.coordinator.shm_segment_count() == 0
                assert handle.outcome().lost
                # The survivor keeps serving through the data plane.
                ok = backend.dispatch(
                    Task(task_id=1, payload=arr), nodes[-1], _double_task,
                    master_node=nodes[-1], at_time=0.0,
                ).outcome()
                assert not ok.lost
                assert np.array_equal(ok.output, arr * 2)
            finally:
                backend.close()
        assert leaked_segments() == []
