"""Capture golden virtual-time results from the current executors.

Run manually (PYTHONPATH=src python tests/_golden_capture.py) to print the
scenario table embedded in tests/test_backends_equivalence.py.  The values
pin the simulated execution path: any refactor of the executors/backends
must reproduce them bit-for-bit.
"""

from __future__ import annotations

import json

from repro import (
    DivideAndConquer,
    Grasp,
    GraspConfig,
    MapSkeleton,
    Pipeline,
    ReduceSkeleton,
    Stage,
    TaskFarm,
)
from repro.core.parameters import AdaptationAction
from repro.grid.load import ConstantLoad, StepLoad
from repro.grid.node import GridNode
from repro.grid.topology import GridBuilder, GridTopology


def hetero_grid() -> GridTopology:
    return GridBuilder().heterogeneous(nodes=8, speed_spread=4.0).named("hetero").build(seed=1)


def dynamic_grid() -> GridTopology:
    return (
        GridBuilder()
        .heterogeneous(nodes=8, speed_spread=4.0)
        .with_dynamic_load("randomwalk", mean_level=0.35)
        .named("dynamic")
        .build(seed=2)
    )


def spike_grid() -> GridTopology:
    nodes = [
        GridNode(node_id=f"s/n{i}", speed=speed, load_model=ConstantLoad(0.0), site="s")
        for i, speed in enumerate([1.0, 1.5, 2.0, 3.0, 4.0, 6.0])
    ]
    nodes[-1] = nodes[-1].with_load(StepLoad(steps=[(5.0, 0.9)], initial=0.0))
    nodes[-2] = nodes[-2].with_load(StepLoad(steps=[(5.0, 0.9)], initial=0.0))
    return GridTopology(nodes=nodes, name="spike")


def scenarios():
    yield "farm_hetero", hetero_grid(), TaskFarm(worker=lambda x: x * x, cost_model=lambda _:
                                                 3.0), list(range(40)), GraspConfig.adaptive()
    yield "farm_spike", spike_grid(), TaskFarm(worker=lambda x: x + 7, cost_model=lambda _:
                                               5.0), list(range(60)), GraspConfig.adaptive()
    yield "farm_dynamic", dynamic_grid(), TaskFarm(worker=lambda x: 2 * x), list(range(50)), \
        GraspConfig.adaptive()
    yield "pipeline_hetero", hetero_grid(), Pipeline(stages=[
        Stage(fn=lambda x: x + 1, cost_model=lambda _: 2.0),
        Stage(fn=lambda x: x * 3, cost_model=lambda _: 4.0),
        Stage(fn=lambda x: x - 5, cost_model=lambda _: 1.0),
    ]), list(range(30)), GraspConfig.adaptive()
    yield "map_dynamic", dynamic_grid(), MapSkeleton(fn=lambda block: [v * 10 for v in block],
                                                     blocks=12), list(range(48)), GraspConfig.adaptive()
    yield "reduce_hetero", hetero_grid(), ReduceSkeleton(op=lambda a, b: a + b, identity=0,
                                                         blocks=8), list(range(64)), GraspConfig.adaptive()
    yield "farm_recal", spike_grid(), TaskFarm(worker=lambda x: x + 7, cost_model=lambda _:
                                               5.0), list(range(60)), \
        GraspConfig.adaptive(threshold_factor=0.3)
    rerank_cfg = GraspConfig.adaptive(threshold_factor=0.3)
    rerank_cfg.execution.adaptation = AdaptationAction.RERANK
    yield "farm_rerank", spike_grid(), TaskFarm(worker=lambda x: x * 2, cost_model=lambda _:
                                                5.0), list(range(60)), rerank_cfg
    yield "pipeline_recal", spike_grid(), Pipeline(stages=[
        Stage(fn=lambda x: x + 1, cost_model=lambda _: 2.0),
        Stage(fn=lambda x: x * 3, cost_model=lambda _: 4.0),
        Stage(fn=lambda x: x - 5, cost_model=lambda _: 1.0),
    ]), list(range(40)), GraspConfig.adaptive(threshold_factor=1.02)
    yield "dc_hetero", hetero_grid(), DivideAndConquer(
        divide=lambda xs: [xs[:len(xs) // 2], xs[len(xs) // 2:]],
        combine=lambda _p, subs: subs[0] + subs[1],
        solve=lambda xs: sum(xs),
        is_trivial=lambda xs: len(xs) <= 4,
        parallel_depth=3,
    ), [list(range(64)), list(range(32))], GraspConfig.adaptive()


def main() -> None:
    table = {}
    for name, grid, skeleton, inputs, config in scenarios():
        try:
            result = Grasp(skeleton=skeleton, grid=grid, config=config).run(inputs=inputs)
        except Exception as exc:  # the seed executors crash on trailing recalibrations
            table[name] = {"error": f"{type(exc).__name__}: {exc}"}
            continue
        table[name] = {
            "outputs": repr(result.outputs),
            "makespan": result.makespan,
            "execution_finished": result.execution.finished,
            "recalibrations": result.recalibrations,
            "chosen": result.chosen_nodes,
            "rounds": len(result.execution.rounds),
            "round_thresholds": [r.threshold for r in result.execution.rounds],
            "per_node": result.per_node_counts(),
            "last_result_finished": max(
                (r.finished for r in result.execution.results),
                default=result.execution.started,
            ),
            "n_results": len(result.results),
        }
    print(json.dumps(table, indent=2, sort_keys=True))


if __name__ == "__main__":
    main()
