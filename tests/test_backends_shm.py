"""The zero-copy shared-memory data plane (``repro.backends.shm``).

Unit coverage for the spill/reconstruct helpers and the refcounted
:class:`~repro.backends.shm.BufferRegistry`, plus the
:class:`~repro.backends.ProcessBackend` integration: large arguments and
results travel as segment descriptors, small ones keep the classic inline
path bit-identically, and every terminal dispatch path — including a
worker SIGKILLed mid-task — releases its segments.  Each test's closing
move is the repo's leak convention: ``/dev/shm`` holds no ``grasp-*``
entry once the owning object is done.
"""

from __future__ import annotations

import os
import pickle
import time

import numpy as np
import pytest

from repro.backends import ProcessBackend
from repro.backends.shm import (
    DEFAULT_SHM_THRESHOLD,
    SEGMENT_PREFIX,
    BufferRegistry,
    SegmentRef,
    ShmEnvelope,
    ShmPayload,
    destroy_payload,
    dumps_oob,
    loads_oob,
    probe_size,
    run_oob,
)
from repro.metrics import MetricsRegistry
from repro.skeletons.base import Task

THRESHOLD = 64 * 1024


def leaked_segments():
    """``grasp-*`` entries currently visible in ``/dev/shm``."""
    try:
        return sorted(n for n in os.listdir("/dev/shm")
                      if n.startswith(SEGMENT_PREFIX))
    except OSError:  # pragma: no cover - non-POSIX-shm host
        return []


def segment_exists(name: str) -> bool:
    return os.path.exists(os.path.join("/dev/shm", name))


def _identity(value):
    return value


def _double_task(task: Task):
    return task.payload * 2


def _big_result_task(task: Task):
    return b"r" * (task.payload * 1024 * 1024)


def _kill_worker(task: Task):  # pragma: no cover - runs in the child
    os._exit(13)


def _head_slice(arr):
    return arr[:4]


@pytest.fixture(autouse=True)
def clean_shm():
    """Start every test from a clean ``/dev/shm`` slate.

    A failed assertion mid-test would otherwise strand its segments and
    cascade bogus leak failures into every later test in the module.
    """
    for name in leaked_segments():
        try:
            os.unlink(os.path.join("/dev/shm", name))
        except OSError:
            pass
    yield


# --------------------------------------------------------------- dumps/loads


class TestDumpsLoads:
    def test_small_object_stays_inline(self):
        obj = {"k": b"v" * 100, "n": 7}
        payload, names = dumps_oob(obj, threshold=THRESHOLD)
        assert names == []
        assert payload.body_ref is None
        # No out-of-band spill: the body is the plain protocol-5 pickle.
        assert payload.body == pickle.dumps(obj, protocol=5)
        assert payload.shm_bytes == 0
        assert loads_oob(payload, take=True) == obj

    def test_large_bytes_body_spills(self):
        obj = b"z" * (3 * THRESHOLD)
        payload, names = dumps_oob(obj, threshold=THRESHOLD)
        assert len(names) == 1
        assert names[0].startswith(SEGMENT_PREFIX)
        assert payload.body == b""
        assert payload.body_ref is not None
        assert payload.body_ref.name == names[0]
        assert payload.shm_bytes >= len(obj)
        assert loads_oob(payload, take=True) == obj
        # take=True transferred ownership and unlinked after the copy.
        assert not segment_exists(names[0])

    def test_numpy_buffer_spills_and_stays_writable(self):
        arr = np.arange(256 * 1024, dtype=np.float64)   # 2 MiB
        payload, names = dumps_oob(arr, threshold=THRESHOLD)
        assert len(names) == 1
        refs = [b for b in payload.buffers if isinstance(b, SegmentRef)]
        assert refs and all(r.name == names[0] for r in refs)
        out = loads_oob(payload, take=True)
        assert isinstance(out, np.ndarray)
        assert np.array_equal(out, arr)
        out[0] = -1.0       # a writable view, not a readonly buffer
        assert not segment_exists(names[0])

    def test_mixed_buffers_pack_one_segment_at_consecutive_offsets(self):
        # Two large numpy buffers spill out-of-band; the big bytearray
        # pickles in-band and pushes the *body* over the threshold, so the
        # body spills too — all three regions share one segment.
        obj = (b"small", bytearray(b"x" * (2 * THRESHOLD)),
               np.ones(THRESHOLD, dtype=np.uint8),
               np.zeros(THRESHOLD, dtype=np.uint8))
        payload, names = dumps_oob(obj, threshold=THRESHOLD)
        assert len(names) == 1
        refs = [b for b in payload.buffers if isinstance(b, SegmentRef)]
        assert len(refs) == 2
        assert payload.body_ref is not None
        regions = sorted(refs + [payload.body_ref],
                         key=lambda r: r.offset)
        assert all(r.name == names[0] for r in regions)
        assert regions[0].offset == 0
        for before, after in zip(regions, regions[1:]):
            assert after.offset == before.offset + before.length
        out = loads_oob(payload, take=True)
        assert out[0] == b"small"
        assert out[1] == obj[1]
        assert np.array_equal(out[2], obj[2])
        assert np.array_equal(out[3], obj[3])

    def test_borrow_leaves_segment_for_the_owner(self):
        registry = BufferRegistry()
        arr = np.arange(128 * 1024, dtype=np.int64)
        payload, names = dumps_oob(arr, threshold=THRESHOLD,
                                   registry=registry)
        assert registry.names == names
        # Two independent borrows: the owner's segment must survive both.
        for _ in range(2):
            out = loads_oob(payload, take=False)
            assert np.array_equal(out, arr)
            assert segment_exists(names[0])
        registry.release(names[0])
        assert not segment_exists(names[0])
        assert leaked_segments() == []

    def test_threshold_must_be_positive(self):
        with pytest.raises(ValueError):
            dumps_oob(b"x", threshold=0)

    def test_take_view_outlives_unlink_and_mapping_sweeps_after(self):
        # Zero-copy receive: the array views the mapping (no /dev/shm
        # entry — unlinked at attach), and once the array dies a sweep
        # closes the pinned mapping.
        from repro.backends import shm as shm_mod

        arr = np.arange(256 * 1024, dtype=np.float64)   # 2 MiB
        payload, names = dumps_oob(arr, threshold=THRESHOLD)
        out = loads_oob(payload, take=True)
        assert not segment_exists(names[0])
        assert np.array_equal(out, arr)
        out[0] = -5.0
        pinned = {s.name for s in shm_mod._PINNED}
        assert names[0] in pinned
        del out
        shm_mod._sweep_pinned()
        assert names[0] not in {s.name for s in shm_mod._PINNED}


# ----------------------------------------------------------------- registry


class TestBufferRegistry:
    def test_refcount_release_unlinks_at_zero(self):
        registry = BufferRegistry()
        segment = registry.create(1024)
        name = segment.name
        assert len(registry) == 1
        registry.retain(name)
        registry.release(name)
        assert segment_exists(name)          # one ref still held
        registry.release(name)
        assert not segment_exists(name)
        assert len(registry) == 0
        registry.release(name)               # over-release is a no-op

    def test_release_many_and_close_sweep(self):
        registry = BufferRegistry()
        first = registry.create(512).name
        second = registry.create(512).name
        registry.release_many([first])
        assert not segment_exists(first)
        assert segment_exists(second)
        registry.close()
        assert not segment_exists(second)
        registry.close()                     # idempotent

    def test_disown_transfers_unlink_duty(self):
        registry = BufferRegistry()
        name = registry.create(256).name
        registry.disown(name)
        assert len(registry) == 0
        assert segment_exists(name)          # still linked: new owner's job
        payload = ShmPayload(body=b"", body_ref=SegmentRef(name, 256))
        destroy_payload(payload)
        assert not segment_exists(name)

    def test_create_rejects_nonpositive_size(self):
        registry = BufferRegistry()
        with pytest.raises(ValueError):
            registry.create(0)


class TestDestroyPayload:
    def test_destroys_fire_and_forget_segments_idempotently(self):
        payload, names = dumps_oob(b"q" * (2 * THRESHOLD),
                                   threshold=THRESHOLD)
        assert segment_exists(names[0])
        destroy_payload(payload)
        assert not segment_exists(names[0])
        destroy_payload(payload)             # missing segments are fine


# --------------------------------------------------------------- probe/run


class TestProbeSize:
    def test_large_bytes_probe_over_threshold(self):
        assert probe_size(b"x" * (2 * THRESHOLD)) >= 2 * THRESHOLD

    def test_task_payload_is_counted(self):
        task = Task(task_id=0, payload=b"x" * (2 * THRESHOLD))
        assert probe_size(task) >= 2 * THRESHOLD

    def test_containers_recurse(self):
        items = [b"x" * THRESHOLD, b"y" * THRESHOLD]
        assert probe_size(items) >= 2 * THRESHOLD
        assert probe_size({"a": items}) >= 2 * THRESHOLD

    def test_small_objects_probe_small(self):
        assert probe_size(7) < 1024
        assert probe_size("tiny") < 1024


class TestRunOob:
    def test_small_result_returned_as_value(self):
        out = run_oob(_identity, THRESHOLD, (5,), None, None)
        assert out == 5

    def test_large_result_spills_into_envelope(self):
        big = b"b" * (2 * THRESHOLD)
        out = run_oob(_identity, THRESHOLD, (big,), None, None)
        assert isinstance(out, ShmEnvelope)
        assert loads_oob(out.payload, take=True) == big
        assert leaked_segments() == []

    def test_small_view_result_detaches_from_borrowed_segment(self):
        # A task returning a small *view* of its borrowed argument must
        # come back valid after the owner released the segment.
        registry = BufferRegistry()
        arr = np.arange(128 * 1024, dtype=np.float64)
        payload, names = dumps_oob((arr,), threshold=THRESHOLD,
                                   registry=registry)
        out = run_oob(_head_slice, 1024 * 1024 * 1024, (), None,
                      ShmEnvelope(payload))
        registry.close()
        assert not segment_exists(names[0])
        assert np.array_equal(out, arr[:4])
        out[0] = -1.0                        # private, not a dead view
        assert leaked_segments() == []

    def test_envelope_argument_is_unwrapped_as_borrow(self):
        registry = BufferRegistry()
        args = (b"a" * (2 * THRESHOLD),)
        payload, names = dumps_oob(args, threshold=THRESHOLD,
                                   registry=registry)
        out = run_oob(_identity, 10 * THRESHOLD, (), None,
                      ShmEnvelope(payload))
        assert out == args[0]
        assert segment_exists(names[0])      # borrowed, owner still holds
        registry.close()
        assert leaked_segments() == []


# ------------------------------------------------------------ ProcessBackend


class TestProcessBackendDataPlane:
    def test_large_numpy_roundtrip_matches_inline_path(self):
        arr = np.arange(640 * 1024, dtype=np.float64)   # 5 MiB
        outputs = {}
        for label, threshold in (("shm", None), ("inline", 0)):
            with ProcessBackend(workers=1, shm_threshold=threshold) as backend:
                node = backend.available_nodes(0.0)[0]
                outcome = backend.dispatch(
                    Task(task_id=0, payload=arr), node, _double_task,
                    master_node=node, at_time=0.0,
                ).outcome()
                assert not outcome.lost
                outputs[label] = outcome.output
        assert np.array_equal(outputs["shm"], outputs["inline"])
        assert outputs["shm"].dtype == outputs["inline"].dtype
        assert outputs["shm"].tobytes() == outputs["inline"].tobytes()
        outputs["shm"][0] = 9.0              # reconstructed array is writable
        assert leaked_segments() == []

    def test_segments_drain_after_dispatches(self):
        arr = np.ones(512 * 1024, dtype=np.uint8)       # 512 KiB args
        with ProcessBackend(workers=1) as backend:
            node = backend.available_nodes(0.0)[0]
            for i in range(4):
                backend.dispatch(
                    Task(task_id=i, payload=arr), node, _double_task,
                    master_node=node, at_time=0.0,
                ).outcome()
            # Release callbacks run on the executor thread right after
            # outcome(); give them a moment before asserting drained.
            deadline = time.monotonic() + 5.0
            while len(backend._shm) and time.monotonic() < deadline:
                time.sleep(0.01)
            assert len(backend._shm) == 0
        assert leaked_segments() == []

    def test_dead_worker_releases_argument_segments(self):
        arr = np.ones(1024 * 1024, dtype=np.uint8)      # 1 MiB args
        with ProcessBackend(workers=1, shm_threshold=1024) as backend:
            node = backend.available_nodes(0.0)[0]
            lost = backend.dispatch(
                Task(task_id=0, payload=arr), node, _kill_worker,
                master_node=node, at_time=0.0,
            ).outcome()
            assert lost.lost
            deadline = time.monotonic() + 5.0
            while len(backend._shm) and time.monotonic() < deadline:
                time.sleep(0.01)
            assert len(backend._shm) == 0
            # The respawned worker still works, through the same data plane.
            ok = backend.dispatch(
                Task(task_id=1, payload=arr), node, _double_task,
                master_node=node, at_time=0.0,
            ).outcome()
            assert not ok.lost
            assert np.array_equal(ok.output, arr * 2)
        assert leaked_segments() == []

    def test_transport_metrics_account_inline_and_shm_bytes(self):
        registry = MetricsRegistry()
        arr = np.arange(256 * 1024, dtype=np.float64)   # 2 MiB
        with ProcessBackend(workers=1) as backend:
            backend.metrics = registry
            node = backend.available_nodes(0.0)[0]
            backend.dispatch(
                Task(task_id=0, payload=arr), node, _double_task,
                master_node=node, at_time=0.0,
            ).outcome()
            backend.dispatch(
                Task(task_id=1, payload=3), node, _double_task,
                master_node=node, at_time=0.0,
            ).outcome()
        assert registry.total("transport.bytes_shm") >= arr.nbytes
        assert registry.total("transport.bytes_inline") > 0
        assert registry.total("transport.shm_segments") == 0

    def test_threshold_zero_is_bit_identical_classic_path(self):
        with ProcessBackend(workers=1, shm_threshold=0) as backend:
            assert backend.shm_threshold == 0
            node = backend.available_nodes(0.0)[0]
            outcome = backend.dispatch(
                Task(task_id=0, payload=4), node, _big_result_task,
                master_node=node, at_time=0.0,
            ).outcome()
            assert outcome.output == b"r" * (4 * 1024 * 1024)
            assert len(backend._shm) == 0
        assert leaked_segments() == []

    def test_default_threshold_is_the_module_default(self):
        with ProcessBackend(workers=1) as backend:
            assert backend.shm_threshold == DEFAULT_SHM_THRESHOLD
