"""Tests for the execution-plan IR (`repro.core.plan`).

Two layers are pinned here:

1. **Construction invariants** — plan dataclasses validate their shapes
   (empty chains, non-callable stages/bodies, bad hints) and the
   lowering of each skeleton produces the expected plan form.
2. **Reference semantics** (Hypothesis) — for random skeleton shapes and
   inputs, ``lower()`` → plan → :func:`repro.core.plan.walk_sequential`
   → ``SkeletalProgram.assemble`` is identical to the skeleton's own
   ``run_sequential``.  This is the property every executor relies on:
   the IR means exactly what the skeleton means.
"""

from __future__ import annotations

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.plan import (
    ChainPlan,
    FanPlan,
    PlanStage,
    UnitRunner,
    stage_from_pipeline_stage,
    walk_sequential,
)
from repro.core.program import SkeletalProgram
from repro.exceptions import SkeletonError
from repro.skeletons.base import Task
from repro.skeletons.composition import FarmOfPipelines, PipelineOfFarms
from repro.skeletons.divide_conquer import DivideAndConquer
from repro.skeletons.map import MapSkeleton
from repro.skeletons.pipeline import Pipeline, Stage
from repro.skeletons.reduce import ReduceSkeleton
from repro.skeletons.taskfarm import TaskFarm


def _inc(x):
    return x + 1


def _triple(x):
    return x * 3


def _stage_cost_two(_item):
    return 2.0


class TestPlanConstruction:
    def test_plan_stage_requires_callables(self):
        with pytest.raises(SkeletonError):
            PlanStage(apply="nope", cost=lambda v: 1.0)
        with pytest.raises(SkeletonError):
            PlanStage(apply=lambda v: v, cost="nope")

    def test_chain_plan_rejects_empty_and_non_stages(self):
        with pytest.raises(SkeletonError):
            ChainPlan(stages=())
        with pytest.raises(SkeletonError):
            ChainPlan(stages=(lambda v: v,))

    def test_chain_plan_rejects_bad_chunk_hint(self):
        stage = PlanStage(apply=_inc, cost=_stage_cost_two)
        with pytest.raises(SkeletonError):
            ChainPlan(stages=(stage,), chunk_size=0)

    def test_fan_plan_rejects_bad_body_and_hints(self):
        with pytest.raises(SkeletonError):
            FanPlan(body="nope")
        with pytest.raises(SkeletonError):
            FanPlan(body=lambda t: t.payload, min_nodes=0)
        with pytest.raises(SkeletonError):
            FanPlan(body=lambda t: t.payload, chunk_size=0)

    def test_chain_unit_cost_threads_the_value(self):
        # Costs are charged against the value *entering* each stage.
        chain = Pipeline([
            Stage(_inc, cost_model=lambda v: float(v)),
            Stage(_triple, cost_model=lambda v: float(v)),
        ]).lower()
        # item=2: stage0 cost 2 (value 2), stage1 cost 3 (value 3).
        assert chain.unit_cost(2) == pytest.approx(5.0)
        assert chain.run_unit(2) == (2 + 1) * 3

    def test_unit_runner_covers_both_shapes(self):
        chain = Pipeline([Stage(_inc), Stage(_triple)]).lower()
        fan = TaskFarm(worker=_triple).lower()
        task = Task(task_id=0, payload=4)
        assert UnitRunner(chain)(task) == (4 + 1) * 3
        assert UnitRunner(fan)(task) == 12
        nested = FarmOfPipelines([Stage(_inc), Stage(_triple)]).lower()
        assert UnitRunner(nested)(task) == (4 + 1) * 3

    def test_walk_sequential_rejects_non_plans(self):
        with pytest.raises(SkeletonError):
            walk_sequential("nope", [])

    def test_lowered_plans_pickle(self):
        # Plans cross process/cluster boundaries like payloads do, so a
        # lowering over module-level callables must pickle round-trip.
        for skeleton in (
            TaskFarm(worker=_triple),
            Pipeline([Stage(_inc), Stage(_triple)]),
            FarmOfPipelines([Stage(_inc), Stage(_triple)]),
            PipelineOfFarms([Stage(_inc), Stage(_triple)]),
        ):
            plan = skeleton.lower()
            clone = pickle.loads(pickle.dumps(plan))
            task = Task(task_id=0, payload=3)
            assert UnitRunner(clone)(task) == UnitRunner(plan)(task)

    def test_stage_from_pipeline_stage_carries_metadata(self):
        stage = Stage(_inc, cost_model=_stage_cost_two, name="inc",
                      replicable=True)
        lowered = stage_from_pipeline_stage(stage)
        assert lowered.name == "inc"
        assert lowered.replicable
        assert lowered.apply(1) == 2
        assert lowered.cost(1) == 2.0


class TestLoweringShapes:
    def test_every_primitive_lowers(self):
        assert isinstance(TaskFarm(worker=_inc).lower(), FanPlan)
        assert isinstance(MapSkeleton(fn=_inc, blocks=2).lower(), FanPlan)
        assert isinstance(
            ReduceSkeleton(op=lambda a, b: a + b, identity=0).lower(), FanPlan
        )
        dc = DivideAndConquer(
            divide=lambda xs: [xs[:1], xs[1:]],
            combine=lambda _p, subs: subs[0] + subs[1],
            solve=lambda xs: xs,
            is_trivial=lambda xs: len(xs) <= 1,
        )
        assert isinstance(dc.lower(), FanPlan)
        chain = Pipeline([Stage(_inc)]).lower()
        assert isinstance(chain, ChainPlan)
        assert chain.replicate is None  # defer to ExecutionConfig

    def test_base_default_lowering_needs_execute_task(self):
        from repro.skeletons.base import Skeleton, SkeletonProperties

        class Bare(Skeleton):
            @property
            def properties(self):
                return SkeletonProperties(name="bare", min_nodes=1)

        with pytest.raises(SkeletonError, match="execute_task"):
            Bare(name="bare").lower()


# ---------------------------------------------------------------------------
# Hypothesis: lower() -> plan -> sequential walk == Skeleton.run_sequential
# for random skeleton shapes and inputs.

_UNARY_OPS = [
    ("inc", lambda x: x + 1),
    ("triple", lambda x: x * 3),
    ("neg", lambda x: -x),
    ("square", lambda x: x * x),
    ("halve", lambda x: x // 2),
]


@st.composite
def farm_skeletons(draw):
    _, op = draw(st.sampled_from(_UNARY_OPS))
    cost = draw(st.sampled_from([None, lambda _i: 3.0]))
    ordered = draw(st.booleans())
    return TaskFarm(worker=op, cost_model=cost, ordered=ordered)


@st.composite
def stage_lists(draw):
    n_stages = draw(st.integers(min_value=1, max_value=4))
    stages = []
    for index in range(n_stages):
        _, op = draw(st.sampled_from(_UNARY_OPS))
        cost = draw(st.sampled_from([1.0, 2.0, 5.0]))
        replicable = draw(st.booleans())
        stages.append(Stage(op, cost_model=lambda _i, _c=cost: _c,
                            name=f"s{index}", replicable=replicable))
    return stages


@st.composite
def pipeline_skeletons(draw):
    return Pipeline(draw(stage_lists()))


@st.composite
def map_skeletons(draw):
    _, op = draw(st.sampled_from(_UNARY_OPS))
    blocks = draw(st.integers(min_value=1, max_value=6))
    return MapSkeleton(fn=lambda block, _op=op: [_op(v) for v in block],
                       blocks=blocks)


@st.composite
def reduce_skeletons(draw):
    blocks = draw(st.integers(min_value=1, max_value=6))
    return ReduceSkeleton(op=lambda a, b: a + b, identity=0, blocks=blocks)


@st.composite
def dc_skeletons(draw):
    depth = draw(st.integers(min_value=0, max_value=3))
    leaf = draw(st.integers(min_value=1, max_value=4))
    return DivideAndConquer(
        divide=lambda xs: [xs[:len(xs) // 2], xs[len(xs) // 2:]],
        combine=lambda _p, subs: subs[0] + subs[1],
        solve=lambda xs: sum(xs),
        is_trivial=lambda xs, _leaf=leaf: len(xs) <= _leaf,
        parallel_depth=depth,
    )


@st.composite
def composition_skeletons(draw):
    stages = draw(stage_lists())
    if draw(st.booleans()):
        return FarmOfPipelines(stages, ordered=draw(st.booleans()))
    return PipelineOfFarms(stages)


@st.composite
def skeletons_and_inputs(draw):
    kind = draw(st.sampled_from(
        ["farm", "pipeline", "map", "reduce", "dc", "composition"]
    ))
    items = draw(st.lists(st.integers(min_value=-50, max_value=50),
                          min_size=1, max_size=16))
    if kind == "farm":
        return draw(farm_skeletons()), items
    if kind == "pipeline":
        return draw(pipeline_skeletons()), items
    if kind == "map":
        return draw(map_skeletons()), items
    if kind == "reduce":
        return draw(reduce_skeletons()), items
    if kind == "dc":
        # D&C inputs are whole problems (lists), not scalars.
        n_problems = draw(st.integers(min_value=1, max_value=3))
        problems = [items[i::n_problems] or [0] for i in range(n_problems)]
        return draw(dc_skeletons()), problems
    return draw(composition_skeletons()), items


class TestPlanWalkProperty:
    @settings(max_examples=120, deadline=None)
    @given(skeletons_and_inputs())
    def test_lowered_walk_matches_run_sequential(self, scenario):
        skeleton, inputs = scenario
        reference = skeleton.run_sequential(list(inputs))
        program = SkeletalProgram(skeleton)
        tasks = list(program.make_tasks(list(inputs)))
        outputs = walk_sequential(program.plan, tasks)
        assert program.assemble(outputs) == reference

    @settings(max_examples=40, deadline=None)
    @given(skeletons_and_inputs())
    def test_walk_agrees_with_program_execute_task(self, scenario):
        # The plan's per-unit runner (what calibration dispatches) must
        # agree with the reference walk unit-for-unit.
        skeleton, inputs = scenario
        program = SkeletalProgram(skeleton)
        tasks = list(program.make_tasks(list(inputs)))
        assert walk_sequential(program.plan, tasks) == \
            [program.execute_task(task) for task in tasks]
