"""Backend-conformance kit instantiated for every shipped backend.

One conformance class per backend family: the virtual-time simulator
wrapper, real OS threads, worker processes, the asyncio event loop, the
distributed cluster backend over real TCP worker agents, and
the fault-injection decorator over both an eager (simulated) and a
concurrent (thread) inner backend — the decorator must be exactly as
conformant as what it wraps, plus its availability filtering.

Third-party backends should do the same: subclass
:class:`conformance.kit.BackendConformance`, provide the ``backend``
fixture, and fix whatever fails (see README, "Testing your own backend").
"""

from __future__ import annotations

import pytest

from repro.backends import (
    AsyncBackend,
    FaultInjectingBackend,
    ProcessBackend,
    SimulatedBackend,
    ThreadBackend,
)
from repro.grid.failures import PermanentFailure
from repro.grid.simulator import GridSimulator
from repro.skeletons.base import Task

from conformance.kit import BackendConformance, conformance_grid, double_payload


class TestSimulatedBackendConformance(BackendConformance):
    # The wrapper is stateless; close() releases nothing, dispatch after
    # close stays legal (all state lives in the simulator).
    rejects_after_close = False

    @pytest.fixture
    def backend(self):
        yield SimulatedBackend(GridSimulator(conformance_grid()))


class TestThreadBackendConformance(BackendConformance):
    @pytest.fixture
    def backend(self):
        backend = ThreadBackend(topology=conformance_grid())
        yield backend
        backend.close()


class TestProcessBackendConformance(BackendConformance):
    @pytest.fixture
    def backend(self):
        backend = ProcessBackend(topology=conformance_grid())
        yield backend
        backend.close()


class TestProcessBackendLegacyConformance(BackendConformance):
    """ProcessBackend with the shared-payload cache disabled.

    The by-value fallback path must honour the exact same contract as the
    default cache-on configuration.
    """

    @pytest.fixture
    def backend(self):
        backend = ProcessBackend(topology=conformance_grid(),
                                 payload_cache=False)
        yield backend
        backend.close()


class TestAsyncBackendConformance(BackendConformance):
    @pytest.fixture
    def backend(self):
        backend = AsyncBackend(topology=conformance_grid())
        yield backend
        backend.close()


class TestClusterBackendConformance(BackendConformance):
    """The distributed backend over real TCP worker agents.

    One LocalCluster per class (worker subprocesses are expensive to
    boot); each test gets a fresh backend over it.  Closing a non-owned
    backend leaves the shared cluster running, which is exactly the
    lifecycle split ``rejects_after_close`` exercises.
    """

    @pytest.fixture(scope="class")
    def cluster_and_grid(self):
        from repro.cluster import LocalCluster

        grid = conformance_grid()
        with LocalCluster(workers=list(grid.node_ids)) as cluster:
            yield cluster, grid

    @pytest.fixture
    def backend(self, cluster_and_grid):
        from repro.cluster import ClusterBackend

        cluster, grid = cluster_and_grid
        backend = ClusterBackend(coordinator=cluster.coordinator,
                                 topology=grid)
        yield backend
        backend.close()


class TestClusterBackendLegacyConformance(TestClusterBackendConformance):
    """ClusterBackend with the payload registry disabled.

    Every dispatch ships its full payload by value (the pre-v2 wire
    behaviour); the contract must be indistinguishable from registry mode.
    """

    @pytest.fixture
    def backend(self, cluster_and_grid):
        from repro.cluster import ClusterBackend

        cluster, grid = cluster_and_grid
        backend = ClusterBackend(coordinator=cluster.coordinator,
                                 topology=grid,
                                 payload_registry=False)
        yield backend
        backend.close()


class TestProcessBackendShmEverythingConformance(BackendConformance):
    """ProcessBackend with ``shm_threshold=1``: every argument and result
    — however small — travels as a shared-memory segment descriptor.

    The most hostile data-plane configuration must be contractually
    indistinguishable from the classic pipe path.
    """

    @pytest.fixture
    def backend(self):
        backend = ProcessBackend(topology=conformance_grid(),
                                 shm_threshold=1)
        yield backend
        backend.close()


class TestClusterBackendShmEverythingConformance(BackendConformance):
    """ClusterBackend over a ``shm_threshold=1`` LocalCluster: every
    argument the coordinator ships and every result an agent returns rides
    a segment descriptor through the v2 frames.
    """

    @pytest.fixture(scope="class")
    def cluster_and_grid(self):
        from repro.cluster import LocalCluster

        grid = conformance_grid()
        with LocalCluster(workers=list(grid.node_ids),
                          shm_threshold=1) as cluster:
            yield cluster, grid

    @pytest.fixture
    def backend(self, cluster_and_grid):
        from repro.cluster import ClusterBackend

        cluster, grid = cluster_and_grid
        backend = ClusterBackend(coordinator=cluster.coordinator,
                                 topology=grid)
        yield backend
        backend.close()


class TestLargePayloadEquivalence:
    """A farm over ~5MiB numpy payloads is bit-identical on every backend,
    shared-memory data plane on and off.

    The data plane is a pure transport optimisation: whichever way the
    bytes travel — inline pipe pickle, inline v2 frame, or ``grasp-*``
    segment descriptor — the reconstructed outputs must match to the
    last bit (dtype, shape and raw buffer).
    """

    TASKS = 3
    WIDTH = 640 * 1024          # float64 -> 5 MiB per payload

    def _farm(self, backend, grid):
        import numpy as np

        nodes = list(grid.node_ids)
        tasks = [Task(task_id=i,
                      payload=np.arange(self.WIDTH, dtype=np.float64) + i)
                 for i in range(self.TASKS)]
        handles = [backend.dispatch(task, nodes[i % len(nodes)],
                                    double_payload, master_node=nodes[0],
                                    at_time=backend.now)
                   for i, task in enumerate(tasks)]
        outputs = [handle.outcome().output for handle in handles]
        assert all(not handle.outcome().lost for handle in handles)
        return [(out.dtype.str, out.shape, out.tobytes()) for out in outputs]

    def test_farm_bit_identical_across_backends_shm_on_and_off(self):
        from repro.cluster import LocalCluster

        grid = conformance_grid()
        results = {}
        with SimulatedBackend(GridSimulator(grid)) as backend:
            results["simulated"] = self._farm(backend, grid)
        with ThreadBackend(topology=grid) as backend:
            results["thread"] = self._farm(backend, grid)
        for label, threshold in (("process-shm", None), ("process-inline", 0)):
            with ProcessBackend(topology=grid,
                                shm_threshold=threshold) as backend:
                results[label] = self._farm(backend, grid)
        for label, threshold in (("cluster-shm", None), ("cluster-inline", 0)):
            with LocalCluster(workers=list(grid.node_ids),
                              shm_threshold=threshold) as cluster:
                backend = cluster.backend(topology=grid)
                try:
                    results[label] = self._farm(backend, grid)
                finally:
                    backend.close()
        reference = results.pop("simulated")
        for label, outputs in results.items():
            assert outputs == reference, f"{label} diverged from simulated"


# --------------------------------------------------------------------------
# Fault-injection decorator: as conformant as its inner backend, with one
# node scheduled dead from t=0 so availability filtering is exercised by
# the kit's consistency checks (the dead node must vanish from
# available_nodes AND report is_available False).

def _dead_last_node(grid):
    return PermanentFailure(failures={grid.node_ids[-1]: 0.0})


class TestFaultInjectedSimulatedConformance(BackendConformance):
    # Unlike the bare simulated wrapper, the decorator *owns* a lifecycle:
    # a closed composite rejects all dispatch paths, even to dead nodes
    # (the close-semantics gap this kit originally flagged).
    rejects_after_close = True

    @pytest.fixture
    def backend(self):
        grid = conformance_grid()
        yield FaultInjectingBackend(
            SimulatedBackend(GridSimulator(grid)),
            failures=_dead_last_node(grid),
        )


class TestFaultInjectedThreadConformance(BackendConformance):
    @pytest.fixture
    def backend(self):
        grid = conformance_grid()
        backend = FaultInjectingBackend(ThreadBackend(topology=grid),
                                        failures=_dead_last_node(grid))
        yield backend
        backend.close()


class TestFaultInjectionSpecifics:
    """Semantics only the decorator provides (beyond the base contract)."""

    @pytest.fixture
    def backend(self):
        grid = conformance_grid()
        yield FaultInjectingBackend(
            SimulatedBackend(GridSimulator(grid)),
            failures=_dead_last_node(grid),
        )

    def test_dead_node_filtered_from_availability(self, backend):
        victim = backend.topology.node_ids[-1]
        assert victim not in backend.available_nodes(backend.now)
        assert backend.is_available(victim, backend.now) is False
        # The inner backend still knows the node exists.
        assert backend.has_node(victim)

    def test_dispatch_to_dead_node_is_lost(self, backend):
        nodes = list(backend.topology.node_ids)
        victim = nodes[-1]
        handle = backend.dispatch(
            Task(task_id=0, payload=1), victim, double_payload,
            master_node=nodes[0], at_time=backend.now,
        )
        outcome = handle.outcome()
        assert outcome.lost is True
        assert outcome.output is None

    def test_chunk_to_dead_node_loses_every_task(self, backend):
        nodes = list(backend.topology.node_ids)
        victim = nodes[-1]
        tasks = [Task(task_id=i, payload=i) for i in range(3)]
        chunk = backend.dispatch_chunk(
            tasks, victim, double_payload, master_node=nodes[0],
            at_time=backend.now,
        ).outcome()
        assert len(chunk.outcomes) == len(tasks)
        assert chunk.lost_any
        assert all(o.lost for o in chunk.outcomes)

    def test_probe_dispatch_ignores_schedule(self, backend):
        # Calibration probes (check_loss=False) have no failure path; the
        # pool is filtered by availability *before* probes are sent.
        nodes = list(backend.topology.node_ids)
        outcome = backend.dispatch(
            Task(task_id=1, payload=3), nodes[-1], double_payload,
            master_node=nodes[0], at_time=backend.now,
            check_loss=False,
        ).outcome()
        assert outcome.lost is False
        assert outcome.output == 6

    def test_close_closes_inner_backend(self):
        grid = conformance_grid()
        inner = ThreadBackend(topology=grid)
        backend = FaultInjectingBackend(inner, failures=_dead_last_node(grid))
        backend.close()
        backend.close()     # idempotent through the decorator too
        from repro.exceptions import GraspError
        with pytest.raises(GraspError):
            inner.dispatch(
                Task(task_id=0, payload=1), grid.node_ids[0], double_payload,
                master_node=grid.node_ids[0], at_time=inner.now,
            )
