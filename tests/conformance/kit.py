"""Reusable backend-conformance kit.

Any :class:`~repro.backends.base.ExecutionBackend` — shipped or third-party
— must satisfy the contract the adaptive runtime is written against.  This
module captures that contract as a parametrized test suite: subclass
:class:`BackendConformance` in a test module, provide a ``backend`` fixture
yielding a fresh instance, and every contract check runs against it.

Checked contract surface:

* **Clock** — ``now`` is non-decreasing; ``advance_to`` never moves it
  backwards (and reaches the target on eager/virtual-time backends).
* **Membership** — ``topology``/``has_node`` consistency; unknown node ids
  raise a :class:`~repro.exceptions.GraspError` subclass from every query.
* **Availability filtering** — ``available_nodes(t)`` is a subset of the
  topology and agrees pointwise with ``is_available``; the runtime routes
  dispatch, recalibration and re-ranking through these queries, so a
  backend that disagrees with itself strands work on dead nodes.
* **Dispatch** — outcome field semantics (node, output, loss flag, the
  ``submitted <= exec_started <= exec_finished <= finished`` timeline),
  probe dispatches (``collect_output=False``) dropping outputs.
* **Chunked dispatch** — one outcome per task, task order preserved, chunk
  extent covering its tasks.
* **Chain dispatch** — stage order, one stage record per stage, output of
  the composed stages, item cost accounting.
* **Queue occupancy** — ``node_free_at`` returns a finite estimate and
  never runs backwards past the clock by more than the pending work.
* **Observation** — load in ``[0, 1)``, positive bandwidth, transfer
  records with a ``started <= finished`` extent.
* **Metrics accounting** — an adopted
  :class:`~repro.metrics.MetricsRegistry` receives a ``dispatch.latency``
  observation per resolved dispatch and the issue/resolve/lost counters
  balance (``issued == resolved + lost``) with the in-flight gauge back
  at zero once every handle has resolved.
* **Lifecycle** — ``close()`` is idempotent; the context-manager protocol
  closes; backends that reject post-close dispatch (``rejects_after_close``)
  do so with a :class:`~repro.exceptions.GraspError` subclass.

Usage::

    from conformance.kit import BackendConformance

    class TestMyBackendConformance(BackendConformance):
        rejects_after_close = True      # post-close dispatch must raise

        @pytest.fixture
        def backend(self):
            with MyBackend(topology=conformance_grid()) as backend:
                yield backend

Everything the kit ships to a backend is picklable (module-level payloads,
dataclass stage callables), so process-pool backends pass unmodified.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass

import pytest

from repro.backends.base import (
    ChainOutcome,
    ChainStage,
    ChunkOutcome,
    DispatchOutcome,
    ExecutionBackend,
)
from repro.exceptions import GraspError
from repro.grid.topology import GridBuilder, GridTopology
from repro.metrics import MetricsRegistry
from repro.skeletons.base import Task

__all__ = ["BackendConformance", "conformance_grid"]


def conformance_grid(nodes: int = 3) -> GridTopology:
    """The small homogeneous topology conformance backends are built over."""
    return (GridBuilder().homogeneous(nodes=nodes, speed=1.0)
            .named("conf").build(seed=0))


# ---------------------------------------------------------------- payloads
# Module-level and dataclass-based: they cross process boundaries on
# process-pool backends, so they must pickle by reference/by value.

def double_payload(task: Task):
    """The kit's farm payload: a checkable transform of the task payload."""
    return task.payload * 2


def _stage_inc(value):
    return value + 1


def _stage_triple(value):
    return value * 3


@dataclass(frozen=True)
class _ConstCost:
    cost: float

    def __call__(self, _value) -> float:
        return self.cost


@dataclass(frozen=True)
class _PickFixed:
    """Stage picker pinning a chain stage to one node (master-side only)."""

    node_id: str

    def __call__(self, _free_at) -> str:
        return self.node_id


class BackendConformance:
    """Contract suite any :class:`ExecutionBackend` must pass.

    Subclasses provide a ``backend`` fixture (fresh instance per test,
    closed afterwards) and may override:

    * ``rejects_after_close`` — whether dispatching on a closed backend
      must raise (wall-clock backends holding real workers: yes; the
      stateless virtual-time wrapper: no).
    """

    rejects_after_close: bool = True

    # ------------------------------------------------------------ helpers
    @staticmethod
    def alive_nodes(backend: ExecutionBackend):
        nodes = backend.available_nodes(backend.now)
        assert nodes, "conformance needs at least one available node"
        return nodes

    def dispatch_one(self, backend: ExecutionBackend, payload=21,
                     task_id: int = 0, **kwargs) -> DispatchOutcome:
        nodes = self.alive_nodes(backend)
        handle = backend.dispatch(
            Task(task_id=task_id, payload=payload), nodes[-1], double_payload,
            master_node=nodes[0], at_time=backend.now, **kwargs,
        )
        outcome = handle.outcome()
        assert handle.done(), "a handle must report done() after outcome()"
        return outcome

    # ------------------------------------------------------------- clock
    def test_clock_is_monotonic(self, backend):
        readings = [backend.now for _ in range(5)]
        assert all(b >= a for a, b in zip(readings, readings[1:]))
        assert all(math.isfinite(r) for r in readings)

    def test_advance_to_never_rewinds(self, backend):
        before = backend.now
        backend.advance_to(before)          # same-time advance: always legal
        assert backend.now >= before
        target = backend.now + 0.25
        backend.advance_to(target)
        assert backend.now >= before
        if backend.eager:
            # Virtual-time backends must actually reach the target.
            assert backend.now >= target

    # -------------------------------------------------------- membership
    def test_topology_membership(self, backend):
        for node_id in backend.topology.node_ids:
            assert backend.has_node(node_id)
        assert not backend.has_node("conformance/ghost")

    def test_unknown_node_queries_raise(self, backend):
        nodes = self.alive_nodes(backend)
        with pytest.raises(GraspError):
            backend.node_free_at("conformance/ghost")
        with pytest.raises(GraspError):
            backend.observe_load("conformance/ghost")
        with pytest.raises(GraspError):
            backend.observe_bandwidth(nodes[0], "conformance/ghost")
        with pytest.raises(GraspError):
            backend.dispatch(
                Task(task_id=99, payload=1), "conformance/ghost",
                double_payload, master_node=nodes[0], at_time=backend.now,
            )

    # ------------------------------------------------------ availability
    def test_available_nodes_agree_with_is_available(self, backend):
        now = backend.now
        available = set(backend.available_nodes(now))
        all_nodes = set(backend.topology.node_ids)
        assert available <= all_nodes
        for node_id in all_nodes:
            assert backend.is_available(node_id, now) == (node_id in available)

    def test_is_available_defaults_to_now(self, backend):
        # time=None must mean "at the backend's current time", not crash.
        for node_id in self.alive_nodes(backend):
            assert backend.is_available(node_id) is True

    # ---------------------------------------------------------- dispatch
    def test_dispatch_roundtrip(self, backend):
        nodes = self.alive_nodes(backend)
        outcome = self.dispatch_one(backend, payload=21)
        assert outcome.output == 42
        assert outcome.node_id == nodes[-1]
        assert outcome.lost is False
        assert (outcome.submitted <= outcome.exec_started
                <= outcome.exec_finished <= outcome.finished)
        assert outcome.duration >= 0.0

    def test_dispatch_probe_discards_output(self, backend):
        outcome = self.dispatch_one(backend, payload=21, task_id=1,
                                    check_loss=False, collect_output=False)
        assert outcome.output is None
        assert outcome.lost is False

    def test_dispatch_without_execute_fn(self, backend):
        nodes = self.alive_nodes(backend)
        handle = backend.dispatch(
            Task(task_id=2, payload=5), nodes[0], None,
            master_node=nodes[0], at_time=backend.now,
        )
        outcome = handle.outcome()
        assert outcome.output is None
        assert outcome.lost is False

    # ---------------------------------------------------------- chunking
    def test_dispatch_chunk_preserves_task_order(self, backend):
        nodes = self.alive_nodes(backend)
        tasks = [Task(task_id=10 + i, payload=i) for i in range(4)]
        handle = backend.dispatch_chunk(
            tasks, nodes[-1], double_payload, master_node=nodes[0],
            at_time=backend.now,
        )
        chunk = handle.outcome()
        assert isinstance(chunk, ChunkOutcome)
        assert handle.done()
        assert chunk.node_id == nodes[-1]
        assert len(chunk.outcomes) == len(tasks)
        assert [o.output for o in chunk.outcomes] == [i * 2 for i in range(4)]
        assert not chunk.lost_any
        assert chunk.duration >= 0.0
        # The chunk's extent covers every task it carried.
        for outcome in chunk.outcomes:
            assert chunk.submitted <= outcome.finished <= chunk.finished + 1e-9

    def test_single_task_chunk_matches_dispatch_semantics(self, backend):
        nodes = self.alive_nodes(backend)
        handle = backend.dispatch_chunk(
            [Task(task_id=20, payload=7)], nodes[-1], double_payload,
            master_node=nodes[0], at_time=backend.now,
        )
        chunk = handle.outcome()
        assert len(chunk.outcomes) == 1
        assert chunk.outcomes[0].output == 14

    # ------------------------------------------------------------ chains
    def test_dispatch_chain_applies_stages_in_order(self, backend):
        nodes = self.alive_nodes(backend)
        stages = [
            ChainStage(pick=_PickFixed(nodes[0]), cost=_ConstCost(2.0),
                       apply=_stage_inc),
            ChainStage(pick=_PickFixed(nodes[-1]), cost=_ConstCost(3.0),
                       apply=_stage_triple),
        ]
        handle = backend.dispatch_chain(
            Task(task_id=30, payload=4), stages, master_node=nodes[0],
            at_time=backend.now,
        )
        outcome = handle.outcome()
        assert isinstance(outcome, ChainOutcome)
        assert outcome.output == (4 + 1) * 3
        assert outcome.final_node == nodes[-1]
        assert outcome.item_cost == pytest.approx(5.0)
        assert len(outcome.stage_records) == 2
        assert [record[0] for record in outcome.stage_records] == \
            [nodes[0], nodes[-1]]
        for _node, duration, cost, _started in outcome.stage_records:
            assert duration >= 0.0
            assert cost in (2.0, 3.0)
        assert outcome.finished >= outcome.submitted

    # --------------------------------------------------- queue occupancy
    def test_node_free_at_returns_finite_estimate(self, backend):
        for node_id in self.alive_nodes(backend):
            estimate = backend.node_free_at(node_id)
            assert math.isfinite(estimate)
        # Dispatching work must never make the estimate infinite/NaN.
        self.dispatch_one(backend, payload=1, task_id=40)
        for node_id in self.alive_nodes(backend):
            assert math.isfinite(backend.node_free_at(node_id))

    # ------------------------------------------------------- observation
    def test_observe_load_in_unit_range(self, backend):
        for node_id in self.alive_nodes(backend):
            load = backend.observe_load(node_id)
            assert 0.0 <= load < 1.0

    def test_observe_bandwidth_positive(self, backend):
        nodes = self.alive_nodes(backend)
        assert backend.observe_bandwidth(nodes[0], nodes[-1]) > 0.0

    def test_transfer_record_extent(self, backend):
        nodes = self.alive_nodes(backend)
        record = backend.transfer(nodes[0], nodes[-1], 1024,
                                  at_time=backend.now)
        assert record.finished >= record.started

    # ----------------------------------------------------------- metrics
    def test_metrics_dispatch_accounting_balances(self, backend):
        registry = MetricsRegistry()
        previous = backend.metrics
        backend.metrics = registry
        try:
            nodes = self.alive_nodes(backend)
            for index in range(4):
                self.dispatch_one(backend, payload=index, task_id=70 + index)
            chunk_tasks = [Task(task_id=80 + i, payload=i) for i in range(3)]
            backend.dispatch_chunk(
                chunk_tasks, nodes[-1], double_payload,
                master_node=nodes[0], at_time=backend.now,
            ).outcome()
            # On concurrent backends outcome() can return before the
            # future's done-callback has booked the resolve; give the
            # callbacks a moment to drain.
            deadline = time.monotonic() + 5.0
            while (registry.total("dispatch.in_flight") != 0.0
                   and time.monotonic() < deadline):
                time.sleep(0.005)
        finally:
            backend.metrics = previous
        issued = registry.total("dispatch.issued")
        resolved = registry.total("dispatch.resolved")
        lost = registry.total("dispatch.lost")
        assert issued > 0
        assert issued == resolved + lost
        assert registry.total("dispatch.latency") == resolved
        assert registry.total("dispatch.in_flight") == 0.0

    # --------------------------------------------------------- lifecycle
    def test_close_is_idempotent(self, backend):
        self.dispatch_one(backend, payload=3, task_id=50)
        backend.close()
        backend.close()     # second close must be a no-op, not an error

    def test_context_manager_closes(self, backend):
        with backend as entered:
            assert entered is backend
            self.dispatch_one(backend, payload=3, task_id=51)
        backend.close()     # close after __exit__ stays idempotent

    def test_dispatch_after_close(self, backend):
        # Snapshot alive nodes before closing: availability queries need not
        # survive close(), and a fault-injected backend's dead nodes would
        # short-circuit the dispatch under test.
        nodes = self.alive_nodes(backend)
        backend.close()
        if self.rejects_after_close:
            with pytest.raises(GraspError):
                backend.dispatch(
                    Task(task_id=60, payload=1), nodes[-1], double_payload,
                    master_node=nodes[0], at_time=backend.now,
                ).outcome()
        else:
            outcome = backend.dispatch(
                Task(task_id=60, payload=1), nodes[-1], double_payload,
                master_node=nodes[0], at_time=backend.now,
            ).outcome()
            assert outcome.output == 2
