"""Reusable backend-conformance kit (see ``kit.py``)."""
