"""Tests for the scheduling policies."""

from __future__ import annotations

import pytest

from repro.core.scheduler import (
    DemandDrivenScheduler,
    StaticBlockScheduler,
    StaticCyclicScheduler,
    WeightedBlockScheduler,
)
from repro.exceptions import SchedulingError
from repro.skeletons.base import Task


def tasks_of(n: int):
    return [Task(task_id=i, payload=i, cost=1.0) for i in range(n)]


class TestDemandDriven:
    def test_picks_earliest_free_node(self):
        scheduler = DemandDrivenScheduler()
        assert scheduler.next_node({"a": 5.0, "b": 1.0, "c": 3.0}) == "b"

    def test_tie_break_by_name(self):
        scheduler = DemandDrivenScheduler()
        assert scheduler.next_node({"b": 1.0, "a": 1.0}) == "a"

    def test_empty_rejected(self):
        with pytest.raises(SchedulingError):
            DemandDrivenScheduler().next_node({})

    def test_assign_not_supported(self):
        with pytest.raises(SchedulingError):
            DemandDrivenScheduler().assign(tasks_of(3), ["a"])


class TestStaticBlock:
    def test_equal_blocks(self):
        assignment = StaticBlockScheduler().assign(tasks_of(9), ["a", "b", "c"])
        assert [len(assignment[n]) for n in ("a", "b", "c")] == [3, 3, 3]

    def test_blocks_are_contiguous(self):
        assignment = StaticBlockScheduler().assign(tasks_of(6), ["a", "b"])
        assert [t.task_id for t in assignment["a"]] == [0, 1, 2]
        assert [t.task_id for t in assignment["b"]] == [3, 4, 5]

    def test_uneven_division(self):
        assignment = StaticBlockScheduler().assign(tasks_of(7), ["a", "b", "c"])
        assert sum(len(v) for v in assignment.values()) == 7

    def test_empty_nodes_rejected(self):
        with pytest.raises(SchedulingError):
            StaticBlockScheduler().assign(tasks_of(3), [])

    def test_next_node_not_supported(self):
        with pytest.raises(SchedulingError):
            StaticBlockScheduler().next_node({"a": 0.0})


class TestStaticCyclic:
    def test_round_robin(self):
        assignment = StaticCyclicScheduler().assign(tasks_of(5), ["a", "b"])
        assert [t.task_id for t in assignment["a"]] == [0, 2, 4]
        assert [t.task_id for t in assignment["b"]] == [1, 3]

    def test_all_tasks_assigned_exactly_once(self):
        assignment = StaticCyclicScheduler().assign(tasks_of(10), ["a", "b", "c"])
        ids = sorted(t.task_id for ts in assignment.values() for t in ts)
        assert ids == list(range(10))

    def test_empty_nodes_rejected(self):
        with pytest.raises(SchedulingError):
            StaticCyclicScheduler().assign(tasks_of(1), [])


class TestWeightedBlock:
    def test_faster_node_gets_more_tasks(self):
        scheduler = WeightedBlockScheduler(weights={"fast": 3.0, "slow": 1.0})
        assignment = scheduler.assign(tasks_of(8), ["fast", "slow"])
        assert len(assignment["fast"]) == 6
        assert len(assignment["slow"]) == 2

    def test_all_tasks_assigned(self):
        scheduler = WeightedBlockScheduler(weights={"a": 2.0, "b": 3.0, "c": 5.0})
        assignment = scheduler.assign(tasks_of(17), ["a", "b", "c"])
        ids = sorted(t.task_id for ts in assignment.values() for t in ts)
        assert ids == list(range(17))

    def test_missing_weight_defaults_to_one(self):
        scheduler = WeightedBlockScheduler(weights={"a": 1.0})
        assignment = scheduler.assign(tasks_of(4), ["a", "b"])
        assert sum(len(v) for v in assignment.values()) == 4

    def test_non_positive_weight_rejected(self):
        scheduler = WeightedBlockScheduler(weights={"a": 0.0})
        with pytest.raises(SchedulingError):
            scheduler.assign(tasks_of(2), ["a"])

    def test_empty_nodes_rejected(self):
        with pytest.raises(SchedulingError):
            WeightedBlockScheduler().assign(tasks_of(2), [])
