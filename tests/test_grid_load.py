"""Tests for the background-load models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.grid.load import (
    MAX_UTILISATION,
    BurstyLoad,
    CompositeLoad,
    ConstantLoad,
    RandomWalkLoad,
    SinusoidalLoad,
    StepLoad,
    TraceLoad,
)


class TestConstantLoad:
    def test_level_is_returned(self):
        assert ConstantLoad(level=0.4).utilisation(123.0) == pytest.approx(0.4)

    def test_default_is_dedicated(self):
        assert ConstantLoad().utilisation(0.0) == 0.0

    def test_invalid_level_rejected(self):
        with pytest.raises(ConfigurationError):
            ConstantLoad(level=1.5)

    def test_mean_utilisation(self):
        assert ConstantLoad(level=0.3).mean_utilisation(0, 100) == pytest.approx(0.3)


class TestStepLoad:
    def test_before_first_step_uses_initial(self):
        load = StepLoad(steps=[(10.0, 0.8)], initial=0.1)
        assert load.utilisation(5.0) == pytest.approx(0.1)

    def test_after_step_uses_level(self):
        load = StepLoad(steps=[(10.0, 0.8)], initial=0.1)
        assert load.utilisation(10.0) == pytest.approx(0.8)
        assert load.utilisation(100.0) == pytest.approx(0.8)

    def test_multiple_steps_ordered(self):
        load = StepLoad(steps=[(20.0, 0.2), (10.0, 0.9)], initial=0.0)
        assert load.utilisation(15.0) == pytest.approx(0.9)
        assert load.utilisation(25.0) == pytest.approx(0.2)

    def test_invalid_level_rejected(self):
        with pytest.raises(ConfigurationError):
            StepLoad(steps=[(1.0, 2.0)])


class TestSinusoidalLoad:
    def test_oscillates_around_base(self):
        load = SinusoidalLoad(base=0.5, amplitude=0.2, period=10.0, phase=0.0)
        values = [load.utilisation(t) for t in np.linspace(0, 10, 100)]
        assert min(values) >= 0.0
        assert max(values) <= MAX_UTILISATION
        assert np.mean(values) == pytest.approx(0.5, abs=0.05)

    def test_periodicity(self):
        load = SinusoidalLoad(base=0.4, amplitude=0.1, period=7.0)
        assert load.utilisation(3.0) == pytest.approx(load.utilisation(3.0 + 7.0))

    def test_clipping(self):
        load = SinusoidalLoad(base=0.9, amplitude=0.5, period=10.0)
        assert max(load.utilisation(t) for t in np.linspace(0, 10, 50)) <= MAX_UTILISATION

    def test_invalid_period(self):
        with pytest.raises(ConfigurationError):
            SinusoidalLoad(period=0.0)


class TestRandomWalkLoad:
    def test_deterministic_given_seed_and_name(self):
        a = RandomWalkLoad(seed=5, name="n0")
        b = RandomWalkLoad(seed=5, name="n0")
        times = np.linspace(0, 500, 40)
        assert [a.utilisation(t) for t in times] == [b.utilisation(t) for t in times]

    def test_different_names_differ(self):
        a = RandomWalkLoad(seed=5, name="n0")
        b = RandomWalkLoad(seed=5, name="n1")
        times = np.linspace(0, 500, 40)
        assert [a.utilisation(t) for t in times] != [b.utilisation(t) for t in times]

    def test_constant_within_epoch(self):
        load = RandomWalkLoad(seed=1, epoch=10.0)
        assert load.utilisation(12.0) == load.utilisation(19.9)

    def test_bounds_respected(self):
        load = RandomWalkLoad(seed=2, volatility=0.4, max_level=0.9)
        values = [load.utilisation(t) for t in np.linspace(0, 2000, 300)]
        assert min(values) >= 0.0
        assert max(values) <= 0.9

    def test_negative_time_returns_start(self):
        load = RandomWalkLoad(seed=3, start_level=0.25)
        assert load.utilisation(-5.0) == pytest.approx(0.25)

    def test_query_order_independent(self):
        a = RandomWalkLoad(seed=9, name="x")
        late_first = a.utilisation(400.0)
        b = RandomWalkLoad(seed=9, name="x")
        for t in np.linspace(0, 400, 50):
            b.utilisation(t)
        assert b.utilisation(400.0) == pytest.approx(late_first)


class TestBurstyLoad:
    def test_two_levels_only(self):
        load = BurstyLoad(seed=4, quiet_level=0.05, busy_level=0.7)
        values = {round(load.utilisation(t), 6) for t in np.linspace(0, 1000, 400)}
        assert values <= {0.05, 0.7}

    def test_bursts_happen_eventually(self):
        load = BurstyLoad(seed=4, p_burst=0.3, p_calm=0.3)
        values = [load.utilisation(t) for t in np.linspace(0, 2000, 500)]
        assert any(v == pytest.approx(load.busy_level) for v in values)
        assert any(v == pytest.approx(load.quiet_level) for v in values)

    def test_deterministic(self):
        a = BurstyLoad(seed=6, name="n")
        b = BurstyLoad(seed=6, name="n")
        times = np.linspace(0, 300, 60)
        assert [a.utilisation(t) for t in times] == [b.utilisation(t) for t in times]

    def test_invalid_probability(self):
        with pytest.raises(ConfigurationError):
            BurstyLoad(p_burst=1.5)


class TestTraceLoad:
    def test_zero_order_hold(self):
        load = TraceLoad(times=[0.0, 10.0, 20.0], levels=[0.1, 0.5, 0.2])
        assert load.utilisation(0.0) == pytest.approx(0.1)
        assert load.utilisation(9.9) == pytest.approx(0.1)
        assert load.utilisation(10.0) == pytest.approx(0.5)
        assert load.utilisation(25.0) == pytest.approx(0.2)

    def test_before_first_point_clamps(self):
        load = TraceLoad(times=[5.0, 10.0], levels=[0.3, 0.6])
        assert load.utilisation(0.0) == pytest.approx(0.3)

    def test_cyclic_replay(self):
        load = TraceLoad(times=[0.0, 10.0, 20.0], levels=[0.1, 0.5, 0.2], cyclic=True)
        assert load.utilisation(25.0) == pytest.approx(load.utilisation(5.0))

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ConfigurationError):
            TraceLoad(times=[0.0], levels=[0.1, 0.2])

    def test_empty_trace_rejected(self):
        with pytest.raises(ConfigurationError):
            TraceLoad(times=[], levels=[])


class TestCompositeLoad:
    def test_sums_components(self):
        load = CompositeLoad([ConstantLoad(0.2), ConstantLoad(0.3)])
        assert load.utilisation(0.0) == pytest.approx(0.5)

    def test_clipped_to_ceiling(self):
        load = CompositeLoad([ConstantLoad(0.9), ConstantLoad(0.9)])
        assert load.utilisation(0.0) == pytest.approx(MAX_UTILISATION)

    def test_empty_components_rejected(self):
        with pytest.raises(ConfigurationError):
            CompositeLoad([])
