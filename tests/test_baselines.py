"""Tests for the non-adaptive baseline executors."""

from __future__ import annotations

import pytest

from repro.baselines.result import BaselineResult
from repro.baselines.static_farm import DemandDrivenFarm, StaticFarm
from repro.baselines.static_pipeline import StaticPipeline
from repro.exceptions import ConfigurationError
from repro.grid.topology import GridBuilder
from repro.skeletons.pipeline import Pipeline, Stage
from repro.skeletons.taskfarm import TaskFarm


def square_farm(cost: float = 2.0) -> TaskFarm:
    return TaskFarm(worker=lambda x: x * x, cost_model=lambda item: cost)


class TestStaticFarm:
    @pytest.mark.parametrize("strategy", ["block", "cyclic", "weighted"])
    def test_outputs_correct_for_all_strategies(self, hetero_grid, strategy):
        runner = StaticFarm(square_farm(), hetero_grid, strategy=strategy)
        result = runner.run(range(40))
        assert isinstance(result, BaselineResult)
        assert result.outputs == [x * x for x in range(40)]
        assert result.total_tasks == 40
        assert result.makespan > 0
        assert result.strategy == f"static-{strategy}"

    def test_block_distribution_is_equal_count(self, dedicated_grid):
        runner = StaticFarm(square_farm(), dedicated_grid, strategy="block")
        result = runner.run(range(35))
        counts = result.per_node_counts()
        assert len(counts) == 7  # 8 nodes minus the master
        assert max(counts.values()) - min(counts.values()) <= 1

    def test_weighted_assigns_more_to_faster_nodes(self, hetero_grid):
        runner = StaticFarm(square_farm(), hetero_grid, strategy="weighted")
        result = runner.run(range(70))
        counts = result.per_node_counts()
        speeds = hetero_grid.speeds()
        fastest = max((n for n in counts), key=lambda n: speeds[n])
        slowest = min((n for n in counts), key=lambda n: speeds[n])
        assert counts[fastest] > counts[slowest]

    def test_weighted_beats_block_on_heterogeneous_grid(self, hetero_grid):
        block = StaticFarm(square_farm(5.0), hetero_grid, strategy="block").run(range(60))
        weighted_grid = GridBuilder().heterogeneous(nodes=8, speed_spread=4.0).build(seed=1)
        weighted = StaticFarm(square_farm(5.0), weighted_grid, strategy="weighted").run(range(60))
        assert weighted.makespan < block.makespan

    def test_master_not_used_as_worker(self, hetero_grid):
        runner = StaticFarm(square_farm(), hetero_grid)
        result = runner.run(range(20))
        assert hetero_grid.node_ids[0] not in result.per_node_counts()

    def test_explicit_workers(self, hetero_grid):
        workers = hetero_grid.node_ids[2:5]
        runner = StaticFarm(square_farm(), hetero_grid, workers=workers)
        result = runner.run(range(30))
        assert set(result.per_node_counts()) <= set(workers)

    def test_invalid_strategy_rejected(self, hetero_grid):
        with pytest.raises(ConfigurationError):
            StaticFarm(square_farm(), hetero_grid, strategy="magic")

    def test_unknown_worker_rejected(self, hetero_grid):
        with pytest.raises(ConfigurationError):
            StaticFarm(square_farm(), hetero_grid, workers=["ghost"])

    def test_non_farm_skeleton_rejected(self, hetero_grid):
        pipe = Pipeline([Stage(lambda x: x)])
        with pytest.raises(ConfigurationError):
            StaticFarm(pipe, hetero_grid)

    def test_empty_inputs_rejected(self, hetero_grid):
        with pytest.raises(Exception):
            StaticFarm(square_farm(), hetero_grid).run([])


class TestDemandDrivenFarm:
    def test_outputs_correct(self, dynamic_grid):
        runner = DemandDrivenFarm(square_farm(), dynamic_grid)
        result = runner.run(range(50))
        assert result.outputs == [x * x for x in range(50)]
        assert result.strategy == "demand-driven"

    def test_beats_static_block_under_heterogeneity(self):
        make_grid = lambda: GridBuilder().heterogeneous(nodes=8, speed_spread=8.0).build(seed=3)
        static = StaticFarm(square_farm(5.0), make_grid(), strategy="block").run(range(80))
        demand = DemandDrivenFarm(square_farm(5.0), make_grid()).run(range(80))
        assert demand.makespan < static.makespan

    def test_faster_nodes_complete_more_tasks(self, hetero_grid):
        runner = DemandDrivenFarm(square_farm(5.0), hetero_grid)
        result = runner.run(range(100))
        counts = result.per_node_counts()
        speeds = hetero_grid.speeds()
        fastest = max((n for n in counts), key=lambda n: speeds[n])
        slowest = min((n for n in counts), key=lambda n: speeds[n])
        assert counts[fastest] > counts[slowest]

    def test_unknown_master_rejected(self, hetero_grid):
        with pytest.raises(ConfigurationError):
            DemandDrivenFarm(square_farm(), hetero_grid, master_node="ghost")


class TestStaticPipeline:
    def make_pipeline(self) -> Pipeline:
        return Pipeline([
            Stage(lambda x: x + 1, cost_model=lambda i: 1.0),
            Stage(lambda x: x * 2, cost_model=lambda i: 4.0),
            Stage(lambda x: x - 3, cost_model=lambda i: 1.0),
        ])

    def test_outputs_correct(self, hetero_grid):
        runner = StaticPipeline(self.make_pipeline(), hetero_grid)
        result = runner.run(range(30))
        assert result.outputs == [((x + 1) * 2) - 3 for x in range(30)]
        assert result.total_tasks == 30

    def test_declaration_mapping_uses_worker_order(self, hetero_grid):
        runner = StaticPipeline(self.make_pipeline(), hetero_grid, mapping="declaration")
        assignment = runner.stage_assignment(sample_item=1)
        workers = [n for n in hetero_grid.node_ids if n != hetero_grid.node_ids[0]]
        assert [assignment[i] for i in range(3)] == workers[:3]

    def test_speed_mapping_puts_heavy_stage_on_fastest_worker(self, hetero_grid):
        runner = StaticPipeline(self.make_pipeline(), hetero_grid, mapping="speed")
        assignment = runner.stage_assignment(sample_item=1)
        speeds = hetero_grid.speeds()
        workers = runner.workers
        fastest_worker = max(workers, key=lambda n: speeds[n])
        assert assignment[1] == fastest_worker  # stage 1 is the heavy stage

    def test_speed_mapping_beats_declaration_on_heterogeneous_grid(self):
        make_grid = lambda: GridBuilder().heterogeneous(nodes=6, speed_spread=8.0).build(seed=4)
        naive = StaticPipeline(self.make_pipeline(), make_grid(),
                               mapping="declaration").run(range(60))
        aware = StaticPipeline(self.make_pipeline(), make_grid(), mapping="speed").run(range(60))
        assert aware.makespan <= naive.makespan

    def test_nodes_listed_per_stage(self, hetero_grid):
        runner = StaticPipeline(self.make_pipeline(), hetero_grid)
        result = runner.run(range(10))
        assert len(result.nodes) == 3

    def test_too_few_workers_rejected(self):
        grid = GridBuilder().homogeneous(nodes=3).build(seed=0)
        with pytest.raises(ConfigurationError):
            StaticPipeline(self.make_pipeline(), grid)  # 2 workers < 3 stages

    def test_invalid_mapping_rejected(self, hetero_grid):
        with pytest.raises(ConfigurationError):
            StaticPipeline(self.make_pipeline(), hetero_grid, mapping="oracle")

    def test_non_pipeline_rejected(self, hetero_grid):
        with pytest.raises(ConfigurationError):
            StaticPipeline(square_farm(), hetero_grid)

    def test_empty_inputs_rejected(self, hetero_grid):
        with pytest.raises(Exception):
            StaticPipeline(self.make_pipeline(), hetero_grid).run([])
