"""The ``python -m repro.trace`` report/diff CLI.

Exercises exit codes, the text renderers, and the ``--format json``
round-trip against real traces recorded from simulated runs.
"""

from __future__ import annotations

import json

import pytest

from repro import Grasp, GraspConfig, GridBuilder, TaskFarm
from repro.trace import load_events, main, summarize
from repro.trace.cli import TraceCliError


def _worker(x):
    return x + 1


@pytest.fixture(scope="module")
def traces(tmp_path_factory):
    base = tmp_path_factory.mktemp("traces")
    grid = (GridBuilder().heterogeneous(nodes=4, speed_spread=4.0)
            .build(seed=1))
    path_a = base / "a.jsonl"
    path_b = base / "b.jsonl"
    Grasp(skeleton=TaskFarm(worker=_worker), grid=grid,
          trace_path=str(path_a)).run(range(24))
    Grasp(skeleton=TaskFarm(worker=_worker), grid=grid,
          config=GraspConfig.adaptive(), trace_path=str(path_b)).run(
        range(48))
    return path_a, path_b


class TestReport:
    def test_text_report_exits_zero(self, traces, capsys):
        path_a, _ = traces
        assert main(["report", str(path_a)]) == 0
        out = capsys.readouterr().out
        assert "trace report" in out
        assert "timeline" in out
        assert "adaptation" in out

    def test_json_report_round_trips(self, traces, capsys):
        path_a, _ = traces
        assert main(["report", str(path_a), "--format", "json"]) == 0
        loaded = json.loads(capsys.readouterr().out)
        assert loaded == summarize(load_events(str(path_a)))
        assert loaded["events"] > 0
        assert loaded["tasks"] == 24
        assert loaded["makespan"] is not None and loaded["makespan"] > 0
        assert "phase.compilation" in loaded["categories"]
        assert loaded["adaptation"]["windows"]

    def test_summary_counts_adaptations(self, traces):
        _, path_b = traces
        summary = summarize(load_events(str(path_b)))
        assert summary["tasks"] == 48
        assert summary["adaptation"]["breaches"] >= 0
        assert summary["cluster"]["deaths"] == []


class TestDiff:
    def test_text_diff_exits_zero(self, traces, capsys):
        path_a, path_b = traces
        assert main(["diff", str(path_a), str(path_b)]) == 0
        out = capsys.readouterr().out
        assert "delta" in out
        assert "makespan" in out

    def test_json_diff_has_both_sides(self, traces, capsys):
        path_a, path_b = traces
        assert main(["diff", str(path_a), str(path_b),
                     "--format", "json"]) == 0
        loaded = json.loads(capsys.readouterr().out)
        assert set(loaded) >= {"a", "b", "diff"}
        assert loaded["a"]["tasks"] == 24
        assert loaded["b"]["tasks"] == 48


class TestErrorHandling:
    def test_missing_file_exits_two(self, tmp_path, capsys):
        assert main(["report", str(tmp_path / "nope.jsonl")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_malformed_line_exits_two(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"category": "ok"}\nnot json at all\n')
        assert main(["report", str(path)]) == 2
        assert "bad.jsonl:2" in capsys.readouterr().err

    def test_non_event_object_exits_two(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"foo": 1}\n')
        with pytest.raises(TraceCliError):
            load_events(str(path))
        assert main(["report", str(path)]) == 2

    def test_no_arguments_exits_two(self, capsys):
        assert main([]) == 2
        capsys.readouterr()

    def test_diff_with_one_trace_exits_two(self, traces, capsys):
        path_a, _ = traces
        assert main(["diff", str(path_a)]) == 2
        capsys.readouterr()

    def test_help_exits_zero(self, capsys):
        assert main(["--help"]) == 0
        assert "report" in capsys.readouterr().out

    def test_empty_trace_reports_cleanly(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert main(["report", str(path)]) == 0
        assert main(["report", str(path), "--format", "json"]) == 0
        capsys.readouterr()


class TestDegenerateTraces:
    """Zero-length and single-event traces render n/a, never crash."""

    def test_empty_trace_renders_na(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert main(["report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "n/a" in out
        assert "-\n" not in out

    def test_single_event_trace_renders_na(self, tmp_path, capsys):
        path = tmp_path / "one.jsonl"
        path.write_text(json.dumps(
            {"category": "phase.programming", "seq": 0, "time": 0.0,
             "message": "one event", "data": {"tasks": 0}}) + "\n")
        assert main(["report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "makespan     n/a" in out
        assert "tasks/sec    n/a" in out

    def test_single_event_summary_has_no_spans(self, tmp_path):
        path = tmp_path / "one.jsonl"
        path.write_text('{"category": "dispatch.issue", "time": 1.5}\n')
        summary = summarize(load_events(str(path)))
        assert summary["makespan"] is None
        assert summary["tasks_per_sec"] is None

    def test_diff_of_degenerate_traces_renders_na(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        one = tmp_path / "one.jsonl"
        one.write_text('{"category": "dispatch.issue", "time": 1.5}\n')
        assert main(["diff", str(empty), str(one)]) == 0
        assert "n/a" in capsys.readouterr().out


class TestRegress:
    def test_fresh_run_passes_seeded_baseline(self, traces, tmp_path,
                                              capsys):
        path_a, _ = traces
        baseline = tmp_path / "baseline.json"
        assert main(["regress", str(path_a), "--baseline", str(baseline),
                     "--write-baseline"]) == 0
        capsys.readouterr()
        assert main(["regress", str(path_a),
                     "--baseline", str(baseline)]) == 0
        out = capsys.readouterr().out
        assert "0 regression(s)" in out

    def test_degraded_profile_exits_one(self, traces, tmp_path, capsys):
        path_a, _ = traces
        baseline = tmp_path / "strict.json"
        baseline.write_text(json.dumps({"keys": {
            "tasks": {"max": 1},
            "lost": {"max": 0},
        }}))
        assert main(["regress", str(path_a),
                     "--baseline", str(baseline)]) == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out

    def test_expect_tolerance_bounds(self, traces, tmp_path, capsys):
        path_a, _ = traces
        good = tmp_path / "good.json"
        good.write_text(json.dumps({"keys": {
            "tasks": {"expect": 24, "tolerance": 0},
            "makespan": {"min": 0},
            "latency_p95": None,
        }}))
        assert main(["regress", str(path_a), "--baseline", str(good)]) == 0
        capsys.readouterr()
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"keys": {
            "tasks": {"expect": 9000, "rel_tolerance": 0.01},
        }}))
        assert main(["regress", str(path_a), "--baseline", str(bad)]) == 1
        capsys.readouterr()

    def test_json_format_reports_regressed_flag(self, traces, tmp_path,
                                                capsys):
        path_a, _ = traces
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({"keys": {"tasks": {"min": 1}}}))
        assert main(["regress", str(path_a), "--baseline", str(baseline),
                     "--format", "json"]) == 0
        loaded = json.loads(capsys.readouterr().out)
        assert loaded["regressed"] is False
        assert loaded["profile"]["source"] == "trace"
        assert loaded["profile"]["tasks"] == 24

    def test_metrics_snapshot_input(self, tmp_path, capsys):
        grid = (GridBuilder().heterogeneous(nodes=4, speed_spread=4.0)
                .build(seed=1))
        snapshot_path = tmp_path / "metrics.json"
        result = Grasp(skeleton=TaskFarm(worker=_worker), grid=grid)\
            .run(range(24))
        snapshot_path.write_text(json.dumps(result.metrics))
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({"keys": {
            "dispatches": {"min": 1},
            "lost": {"max": 0},
        }}))
        assert main(["regress", str(snapshot_path),
                     "--baseline", str(baseline)]) == 0
        out = capsys.readouterr().out
        assert "(metrics)" in out

    def test_malformed_baseline_exits_two(self, traces, tmp_path, capsys):
        path_a, _ = traces
        baseline = tmp_path / "broken.json"
        baseline.write_text("[]")
        assert main(["regress", str(path_a),
                     "--baseline", str(baseline)]) == 2
        assert "error:" in capsys.readouterr().err
