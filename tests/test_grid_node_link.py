"""Tests for grid nodes, links and sites."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.grid.link import MIN_BANDWIDTH_FRACTION, NetworkLink
from repro.grid.load import ConstantLoad, StepLoad
from repro.grid.node import MIN_AVAILABLE_FRACTION, GridNode
from repro.grid.site import Site


class TestGridNode:
    def test_idle_node_full_speed(self):
        node = GridNode(node_id="n", speed=4.0)
        assert node.effective_speed(0.0) == pytest.approx(4.0)

    def test_loaded_node_slows_down(self):
        node = GridNode(node_id="n", speed=4.0, load_model=ConstantLoad(0.5))
        assert node.effective_speed(0.0) == pytest.approx(2.0)

    def test_speed_floor_under_saturation(self):
        node = GridNode(node_id="n", speed=4.0, load_model=ConstantLoad(0.98))
        assert node.effective_speed(0.0) >= 4.0 * MIN_AVAILABLE_FRACTION

    def test_execution_time_scales_with_cost_and_load(self):
        node = GridNode(node_id="n", speed=2.0)
        assert node.execution_time(10.0, 0.0) == pytest.approx(5.0)
        loaded = GridNode(node_id="n2", speed=2.0, load_model=ConstantLoad(0.5))
        assert loaded.execution_time(10.0, 0.0) == pytest.approx(10.0)

    def test_zero_cost_is_instant(self):
        node = GridNode(node_id="n", speed=2.0)
        assert node.execution_time(0.0, 0.0) == 0.0

    def test_negative_cost_rejected(self):
        node = GridNode(node_id="n", speed=2.0)
        with pytest.raises(ConfigurationError):
            node.execution_time(-1.0, 0.0)

    def test_time_varying_load(self):
        node = GridNode(node_id="n", speed=1.0,
                        load_model=StepLoad(steps=[(10.0, 0.5)], initial=0.0))
        assert node.execution_time(1.0, 0.0) == pytest.approx(1.0)
        assert node.execution_time(1.0, 10.0) == pytest.approx(2.0)

    def test_with_load_returns_copy(self):
        node = GridNode(node_id="n", speed=2.0)
        other = node.with_load(ConstantLoad(0.5))
        assert other is not node
        assert other.node_id == node.node_id
        assert node.effective_speed(0.0) == pytest.approx(2.0)
        assert other.effective_speed(0.0) == pytest.approx(1.0)

    @pytest.mark.parametrize("kwargs", [
        {"node_id": ""},
        {"node_id": "n", "speed": 0.0},
        {"node_id": "n", "speed": -1.0},
        {"node_id": "n", "cores": 0},
        {"node_id": "n", "memory_mb": 0},
    ])
    def test_invalid_construction(self, kwargs):
        with pytest.raises(ConfigurationError):
            GridNode(**kwargs)

    def test_hashable_by_id(self):
        a = GridNode(node_id="n", speed=1.0)
        b = GridNode(node_id="n", speed=2.0)
        assert hash(a) == hash(b)


class TestNetworkLink:
    def test_transfer_time_latency_plus_bandwidth(self):
        link = NetworkLink(src="a", dst="b", latency=0.01, bandwidth=1000.0)
        assert link.transfer_time(500.0, 0.0) == pytest.approx(0.01 + 0.5)

    def test_zero_bytes_costs_latency_only(self):
        link = NetworkLink(src="a", dst="b", latency=0.02, bandwidth=1000.0)
        assert link.transfer_time(0.0, 0.0) == pytest.approx(0.02)

    def test_negative_bytes_rejected(self):
        link = NetworkLink(src="a", dst="b")
        with pytest.raises(ConfigurationError):
            link.transfer_time(-1.0, 0.0)

    def test_utilised_link_is_slower(self):
        quiet = NetworkLink(src="a", dst="b", latency=0.0, bandwidth=1000.0)
        busy = NetworkLink(src="a", dst="b", latency=0.0, bandwidth=1000.0,
                           load_model=ConstantLoad(0.5))
        assert busy.transfer_time(1000.0, 0.0) > quiet.transfer_time(1000.0, 0.0)

    def test_bandwidth_floor(self):
        link = NetworkLink(src="a", dst="b", bandwidth=1000.0,
                           load_model=ConstantLoad(0.98))
        assert link.effective_bandwidth(0.0) >= 1000.0 * MIN_BANDWIDTH_FRACTION

    def test_symmetric_connects_both_ways(self):
        link = NetworkLink(src="a", dst="b")
        assert link.connects("a", "b")
        assert link.connects("b", "a")

    def test_asymmetric_connects_one_way(self):
        link = NetworkLink(src="a", dst="b", symmetric=False)
        assert link.connects("a", "b")
        assert not link.connects("b", "a")

    def test_key_canonical_for_symmetric(self):
        assert NetworkLink(src="b", dst="a").key() == NetworkLink(src="a", dst="b").key()

    @pytest.mark.parametrize("kwargs", [
        {"src": "", "dst": "b"},
        {"src": "a", "dst": "b", "latency": -1.0},
        {"src": "a", "dst": "b", "bandwidth": 0.0},
    ])
    def test_invalid_construction(self, kwargs):
        with pytest.raises(ConfigurationError):
            NetworkLink(**kwargs)


class TestSite:
    def test_membership(self):
        site = Site(site_id="s", node_ids=["a", "b"])
        assert "a" in site
        assert "c" not in site
        assert len(site) == 2

    def test_add_node(self):
        site = Site(site_id="s")
        site.add_node("a")
        assert "a" in site

    def test_duplicate_add_rejected(self):
        site = Site(site_id="s", node_ids=["a"])
        with pytest.raises(ConfigurationError):
            site.add_node("a")

    def test_duplicate_initial_nodes_rejected(self):
        with pytest.raises(ConfigurationError):
            Site(site_id="s", node_ids=["a", "a"])

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            Site(site_id="")
        with pytest.raises(ConfigurationError):
            Site(site_id="s", intra_bandwidth=0.0)
