"""Tests for grid topologies and the fluent builder."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.exceptions import ConfigurationError, GridError
from repro.grid.failures import PermanentFailure
from repro.grid.link import NetworkLink
from repro.grid.load import RandomWalkLoad
from repro.grid.node import GridNode
from repro.grid.site import Site
from repro.grid.topology import GridBuilder, GridTopology


def two_site_topology() -> GridTopology:
    nodes = [GridNode(node_id=f"a/n{i}", speed=2.0) for i in range(2)]
    nodes += [GridNode(node_id=f"b/n{i}", speed=1.0) for i in range(2)]
    sites = [
        Site(site_id="a", node_ids=["a/n0", "a/n1"], intra_latency=1e-4, intra_bandwidth=1e8),
        Site(site_id="b", node_ids=["b/n0", "b/n1"], intra_latency=1e-4, intra_bandwidth=1e8),
    ]
    links = [NetworkLink(src="a", dst="b", latency=0.01, bandwidth=1e6)]
    return GridTopology(nodes=nodes, sites=sites, links=links,
                        wan_latency=0.05, wan_bandwidth=5e5)


class TestGridTopology:
    def test_node_lookup(self):
        topo = two_site_topology()
        assert topo.node("a/n0").speed == 2.0
        assert "a/n0" in topo
        assert len(topo) == 4

    def test_unknown_node_raises(self):
        topo = two_site_topology()
        with pytest.raises(GridError):
            topo.node("missing")

    def test_site_of(self):
        topo = two_site_topology()
        assert topo.site_of("a/n0") == "a"
        assert topo.site_of("b/n1") == "b"

    def test_duplicate_nodes_rejected(self):
        with pytest.raises(ConfigurationError):
            GridTopology(nodes=[GridNode("x"), GridNode("x")])

    def test_empty_topology_rejected(self):
        with pytest.raises(ConfigurationError):
            GridTopology(nodes=[])

    def test_site_referencing_unknown_node_rejected(self):
        with pytest.raises(ConfigurationError):
            GridTopology(nodes=[GridNode("x")],
                         sites=[Site(site_id="s", node_ids=["y"])])

    def test_node_in_two_sites_rejected(self):
        with pytest.raises(ConfigurationError):
            GridTopology(
                nodes=[GridNode("x")],
                sites=[Site(site_id="s1", node_ids=["x"]),
                       Site(site_id="s2", node_ids=["x"])],
            )

    def test_intra_site_link_resolution(self):
        topo = two_site_topology()
        link = topo.link_between("a/n0", "a/n1")
        assert link.latency == pytest.approx(1e-4)
        assert link.bandwidth == pytest.approx(1e8)

    def test_inter_site_link_resolution_uses_declared_site_link(self):
        topo = two_site_topology()
        link = topo.link_between("a/n0", "b/n0")
        assert link.latency == pytest.approx(0.01)
        assert link.bandwidth == pytest.approx(1e6)

    def test_explicit_node_link_wins(self):
        nodes = [GridNode("x"), GridNode("y")]
        links = [NetworkLink(src="x", dst="y", latency=0.5, bandwidth=100.0)]
        topo = GridTopology(nodes=nodes, links=links)
        assert topo.link_between("x", "y").latency == pytest.approx(0.5)

    def test_loopback_link_is_free(self):
        topo = two_site_topology()
        link = topo.link_between("a/n0", "a/n0")
        assert link.latency == 0.0
        assert link.transfer_time(1e6, 0.0) < 1e-6

    def test_wan_defaults_for_unsited_nodes(self):
        topo = GridTopology(nodes=[GridNode("x"), GridNode("y")],
                            wan_latency=0.02, wan_bandwidth=1e6)
        link = topo.link_between("x", "y")
        assert link.latency == pytest.approx(0.02)

    def test_unknown_link_endpoint_rejected(self):
        with pytest.raises(ConfigurationError):
            GridTopology(nodes=[GridNode("x")],
                         links=[NetworkLink(src="x", dst="ghost")])

    def test_heterogeneity(self):
        topo = two_site_topology()
        assert topo.heterogeneity() == pytest.approx(2.0)

    def test_available_nodes_respects_failures(self):
        topo = two_site_topology().with_failure_model(
            PermanentFailure(failures={"a/n0": 5.0})
        )
        assert "a/n0" in topo.available_nodes(0.0)
        assert "a/n0" not in topo.available_nodes(10.0)
        assert len(topo.available_nodes(10.0)) == 3

    def test_to_networkx(self):
        topo = two_site_topology()
        graph = topo.to_networkx()
        assert isinstance(graph, nx.Graph)
        assert graph.number_of_nodes() == 4
        assert graph.number_of_edges() == 6  # complete graph over 4 nodes

    def test_describe(self):
        info = two_site_topology().describe()
        assert info["nodes"] == 4
        assert info["sites"] == 2
        assert info["heterogeneity"] == pytest.approx(2.0)


class TestGridBuilder:
    def test_homogeneous(self):
        grid = GridBuilder().homogeneous(nodes=4, speed=3.0).build(seed=0)
        assert len(grid) == 4
        assert all(node.speed == pytest.approx(3.0) for node in grid.nodes)

    def test_heterogeneous_spread(self):
        grid = GridBuilder().heterogeneous(nodes=6, speed_spread=8.0).build(seed=0)
        assert grid.heterogeneity() == pytest.approx(8.0)

    def test_with_speeds(self):
        grid = GridBuilder().with_speeds([1.0, 2.0, 5.0]).build(seed=0)
        assert sorted(grid.speeds().values()) == [1.0, 2.0, 5.0]

    def test_multi_site(self):
        grid = (GridBuilder().site("edi", nodes=3, speed=4.0)
                .site("bcn", nodes=2, speed=2.0).build(seed=0))
        assert len(grid) == 5
        assert len(grid.sites) == 2
        assert grid.site_of("edi/n0") == "edi"

    def test_dynamic_load_attached_per_node(self):
        grid = (GridBuilder().homogeneous(nodes=3)
                .with_dynamic_load("randomwalk").build(seed=1))
        models = [node.load_model for node in grid.nodes]
        assert all(isinstance(m, RandomWalkLoad) for m in models)
        # Per-node streams differ.
        u = [m.utilisation(50.0) for m in models]
        assert len(set(u)) > 1

    def test_constant_load_level(self):
        grid = (GridBuilder().homogeneous(nodes=2)
                .with_dynamic_load("constant", level=0.4).build(seed=0))
        assert all(node.utilisation(0.0) == pytest.approx(0.4) for node in grid.nodes)

    def test_unknown_load_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            GridBuilder().homogeneous(nodes=2).with_dynamic_load("weather")

    def test_empty_builder_rejected(self):
        with pytest.raises(ConfigurationError):
            GridBuilder().build(seed=0)

    def test_builder_is_deterministic(self):
        make = lambda: (GridBuilder().heterogeneous(nodes=5, speed_spread=4.0)
                        .with_dynamic_load("randomwalk").build(seed=7))
        a, b = make(), make()
        assert a.speeds() == b.speeds()
        assert [n.utilisation(33.0) for n in a.nodes] == [n.utilisation(33.0) for n in b.nodes]

    def test_failures_attached(self):
        grid = (GridBuilder().homogeneous(nodes=2)
                .with_failures(PermanentFailure(failures={"site0/n0": 1.0}))
                .build(seed=0))
        assert "site0/n0" not in grid.available_nodes(2.0)

    def test_named(self):
        grid = GridBuilder().homogeneous(nodes=1).named("testbed").build()
        assert grid.name == "testbed"
