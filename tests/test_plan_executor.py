"""Tests for the unified plan executor (`repro.core.plan_executor`).

The farm/pipeline-specific behaviour is pinned by the goldens and the
historical executor suites (which now exercise the shims); this file
covers what only the plan IR makes possible:

* true **nested compositions** — a ``FarmOfPipelines`` dispatched as a
  chain per unit, adaptively, instead of collapsing onto one opaque
  worker callable;
* the **lost-task cap on chains** — a never-succeeding-but-available
  node in a pipeline raises ``ExecutionError`` instead of livelocking
  (previously the cap was farm-only);
* **chunked chain dispatch** — ``chunk_size`` now also widens the
  pipeline window budget and folds k consecutive completions into one
  decision sample, without changing what the pipeline computes;
* the ``PipelineOfFarms`` standing **replication hint**;
* thread hygiene: a nested-composition run leaves no leaked ``grasp-*``
  threads (the CI leak step drives this test).
"""

from __future__ import annotations

import dataclasses
import threading

import pytest

from repro import Grasp, GraspConfig, ThreadBackend
from repro.core.plan import ChainPlan, FanPlan
from repro.core.plan_executor import PlanExecutor
from repro.exceptions import ExecutionError
from repro.grid.load import StepLoad
from repro.grid.node import GridNode
from repro.grid.simulator import GridSimulator
from repro.grid.topology import GridBuilder, GridTopology
from repro.skeletons.composition import FarmOfPipelines, PipelineOfFarms
from repro.skeletons.pipeline import Pipeline, Stage
from repro.skeletons.taskfarm import TaskFarm


def three_stage() -> list:
    return [
        Stage(lambda x: x + 1, cost_model=lambda _: 2.0, name="inc"),
        Stage(lambda x: x * 3, cost_model=lambda _: 4.0, name="tri"),
        Stage(lambda x: x - 5, cost_model=lambda _: 1.0, name="dec"),
    ]


def hetero_grid() -> GridTopology:
    return (GridBuilder().heterogeneous(nodes=8, speed_spread=4.0)
            .named("plan-hetero").build(seed=1))


def spike_grid() -> GridTopology:
    """Fast nodes that get slammed at t=5, to force adaptation."""
    from repro.grid.load import ConstantLoad

    nodes = [
        GridNode(node_id=f"p/n{i}", speed=speed,
                 load_model=ConstantLoad(0.0), site="p")
        for i, speed in enumerate([1.0, 1.5, 2.0, 3.0, 4.0, 6.0])
    ]
    nodes[-1] = nodes[-1].with_load(StepLoad(steps=[(5.0, 0.9)], initial=0.0))
    nodes[-2] = nodes[-2].with_load(StepLoad(steps=[(5.0, 0.9)], initial=0.0))
    return GridTopology(nodes=nodes, name="plan-spike")


class TestNestedComposition:
    """FarmOfPipelines runs as a fan of chains, not a flattened farm."""

    def test_nested_outputs_match_sequential_on_simulator(self):
        composed = FarmOfPipelines(three_stage())
        reference = composed.run_sequential(range(24))
        result = Grasp(skeleton=FarmOfPipelines(three_stage()),
                       grid=hetero_grid(),
                       config=GraspConfig.adaptive()).run(inputs=range(24))
        assert result.outputs == reference
        assert result.total_tasks == 24

    def test_nested_units_execute_stage_by_stage(self):
        # The simulator's chain records show every unit walking all three
        # stages — the composition is dispatched as a chain, not as one
        # opaque farm payload on a single node.
        grid = hetero_grid()
        sim = GridSimulator(grid)
        from repro.backends import SimulatedBackend

        captured = []
        backend = SimulatedBackend(sim)
        original = backend.dispatch_chain

        def spy(task, stages, master_node, at_time):
            handle = original(task, stages, master_node=master_node,
                              at_time=at_time)
            captured.append(handle.outcome().stage_records)
            return handle

        backend.dispatch_chain = spy
        result = Grasp(skeleton=FarmOfPipelines(three_stage()), grid=grid,
                       config=GraspConfig.adaptive(),
                       backend=backend).run(inputs=range(12))
        assert result.outputs == [((x + 1) * 3) - 5 for x in range(12)]
        assert captured, "no unit was dispatched through the chain primitive"
        assert all(len(records) == 3 for records in captured)

    def test_nested_adapts_under_load_spike(self):
        composed = FarmOfPipelines(three_stage())
        reference = composed.run_sequential(range(60))
        result = Grasp(skeleton=FarmOfPipelines(three_stage()),
                       grid=spike_grid(),
                       config=GraspConfig.adaptive(threshold_factor=0.3),
                       ).run(inputs=range(60))
        assert result.outputs == reference
        assert result.recalibrations >= 1
        assert len(result.execution.rounds) >= 1

    def test_nested_runs_on_threads(self):
        composed = FarmOfPipelines(three_stage())
        reference = composed.run_sequential(range(16))
        grid = GridBuilder().homogeneous(nodes=4).named("plan-t").build(seed=0)
        result = Grasp(skeleton=FarmOfPipelines(three_stage()), grid=grid,
                       config=GraspConfig.adaptive(),
                       backend="thread").run(inputs=range(16))
        assert result.outputs == reference

    def test_nested_composition_leaves_no_leaked_threads(self):
        # Leak-check convention: every service thread the runtime spawns
        # is named grasp-*; after a nested-composition run over an
        # internally created backend, none may survive.
        grid = GridBuilder().homogeneous(nodes=4).named("plan-l").build(seed=0)
        result = Grasp(skeleton=FarmOfPipelines(three_stage()), grid=grid,
                       config=GraspConfig.adaptive(),
                       backend="thread").run(inputs=range(12))
        assert result.outputs == [((x + 1) * 3) - 5 for x in range(12)]
        leaked = [t for t in threading.enumerate()
                  if t.name.startswith("grasp-") and t.is_alive()]
        assert leaked == []


class TestNestedFaultTolerance:
    """Mid-chain node death on a nested fan re-enqueues the unit.

    The pre-IR FarmOfPipelines collapsed onto a farm whose dispatches
    resolved as *lost* when a worker died; chain dispatch surfaces the
    same death as a GridError (the process/cluster behaviour).  The
    nested walk must fold that into the fan's loss path instead of
    aborting the run.
    """

    class _GridErrorHandle:
        def __init__(self, inner):
            self._inner = inner
            self.node_id = inner.node_id
            self.submitted = inner.submitted
            self.master_free_after = inner.master_free_after
            self.next_emit = inner.next_emit

        def done(self):
            return self._inner.done()

        def outcome(self):
            from repro.exceptions import GridError

            self._inner.outcome()  # let the real work finish first
            raise GridError("worker died mid-pipeline-stage")

    def test_mid_chain_grid_error_is_a_loss_not_an_abort(self):
        outer = self

        class DiesFirstTwoChains(ThreadBackend):
            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                self._deaths = 2

            def dispatch_chain(self, task, stages, master_node, at_time):
                handle = super().dispatch_chain(
                    task, stages, master_node=master_node, at_time=at_time)
                if self._deaths > 0:
                    self._deaths -= 1
                    return outer._GridErrorHandle(handle)
                return handle

        grid = GridBuilder().homogeneous(nodes=3).named("ncf").build(seed=0)
        composed = FarmOfPipelines([Stage(lambda x: x + 1),
                                    Stage(lambda x: x * 2)])
        with DiesFirstTwoChains(topology=grid) as backend:
            result = Grasp(skeleton=composed, grid=grid,
                           backend=backend).run(inputs=range(8))
        assert result.outputs == [(x + 1) * 2 for x in range(8)]
        assert result.execution.lost_tasks == 2

    def test_chain_dying_forever_hits_the_loss_cap(self):
        outer = self

        class AlwaysDyingChains(ThreadBackend):
            def dispatch_chain(self, task, stages, master_node, at_time):
                handle = super().dispatch_chain(
                    task, stages, master_node=master_node, at_time=at_time)
                return outer._GridErrorHandle(handle)

        grid = GridBuilder().homogeneous(nodes=3).named("ncx").build(seed=0)
        composed = FarmOfPipelines([Stage(lambda x: x + 1)])
        with AlwaysDyingChains(topology=grid) as backend:
            with pytest.raises(ExecutionError, match="lost"):
                Grasp(skeleton=composed, grid=grid,
                      backend=backend).run(inputs=range(6))

    def test_payload_exceptions_still_propagate(self):
        # Only infrastructure death converts to a loss; a unit whose own
        # stage function raises must surface that exception unchanged.
        def boom(x):
            raise RuntimeError("stage exploded")

        grid = GridBuilder().homogeneous(nodes=3).named("ncp").build(seed=0)
        composed = FarmOfPipelines([Stage(lambda x: x + 1), Stage(boom)])
        with pytest.raises(RuntimeError, match="stage exploded"):
            Grasp(skeleton=composed, grid=grid,
                  backend="thread").run(inputs=range(4))


class TestPipelineOfFarmsHint:
    def test_replication_hint_farms_stages_over_spares(self):
        # Default config (replicate_stages=False): the standing hint on
        # the lowered chain still replicates stages over spare chosen
        # nodes, so the initial mapping uses more nodes than stages.
        composed = PipelineOfFarms(three_stage())
        reference = composed.run_sequential(range(30))
        grid = GridBuilder().homogeneous(nodes=8).named("pof").build(seed=0)
        result = Grasp(skeleton=PipelineOfFarms(three_stage()), grid=grid,
                       config=GraspConfig.adaptive()).run(inputs=range(30))
        assert result.outputs == reference
        first_mapping = result.execution.chosen_history[0]
        assert len(first_mapping) > 3

    def test_plain_pipeline_still_defers_to_config(self):
        # An ordinary Pipeline must keep ignoring spare nodes unless
        # ExecutionConfig.replicate_stages asks for replication.
        grid = GridBuilder().homogeneous(nodes=8).named("pp").build(seed=0)
        result = Grasp(skeleton=Pipeline(three_stage()), grid=grid,
                       config=GraspConfig.non_adaptive()).run(inputs=range(12))
        assert len(result.execution.chosen_history[0]) == 3


class _LostChainHandle:
    """Wraps a chain handle, reporting its item as lost."""

    def __init__(self, inner):
        self._inner = inner
        self.node_id = inner.node_id
        self.submitted = inner.submitted
        self.master_free_after = inner.master_free_after
        self.next_emit = inner.next_emit

    def done(self):
        return self._inner.done()

    def outcome(self):
        return dataclasses.replace(self._inner.outcome(), output=None,
                                   lost=True)


class AlwaysLosingChainBackend(ThreadBackend):
    """Loses every chain dispatch while every node stays 'available' —
    the shape of a pipeline stage host that can never complete an item
    but cannot be seen dead."""

    def dispatch_chain(self, task, stages, master_node, at_time):
        handle = super().dispatch_chain(task, stages,
                                        master_node=master_node,
                                        at_time=at_time)
        return _LostChainHandle(handle)


class TestChainLossCap:
    def test_pipeline_losing_every_item_aborts_instead_of_livelocking(self):
        # Regression for the farm-only livelock cap: a chain whose items
        # are all lost by an available node must raise, not spin forever.
        grid = GridBuilder().homogeneous(nodes=3).named("lossy").build(seed=0)
        pipeline = Pipeline([Stage(lambda x: x + 1), Stage(lambda x: x * 2)])
        with AlwaysLosingChainBackend(topology=grid) as backend:
            with pytest.raises(ExecutionError, match="lost"):
                Grasp(skeleton=pipeline, grid=grid,
                      backend=backend).run(inputs=range(6))

    def test_lost_chain_item_is_reenqueued_and_completes(self):
        # A *bounded* loss: the first two chain dispatches are lost, then
        # the backend behaves; every item must still complete exactly once.
        class DropsFirstTwo(ThreadBackend):
            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                self._drops = 2

            def dispatch_chain(self, task, stages, master_node, at_time):
                handle = super().dispatch_chain(
                    task, stages, master_node=master_node, at_time=at_time)
                if self._drops > 0:
                    self._drops -= 1
                    return _LostChainHandle(handle)
                return handle

        grid = GridBuilder().homogeneous(nodes=3).named("flaky").build(seed=0)
        pipeline = Pipeline([Stage(lambda x: x + 1), Stage(lambda x: x * 2)])
        with DropsFirstTwo(topology=grid) as backend:
            result = Grasp(skeleton=pipeline, grid=grid,
                           backend=backend).run(inputs=range(8))
        assert result.outputs == [(x + 1) * 2 for x in range(8)]
        assert result.execution.lost_tasks == 2


class TestChunkedChains:
    @pytest.mark.parametrize("backend", ["simulated", "thread"])
    def test_chunked_pipeline_matches_sequential(self, backend):
        pipeline = Pipeline(three_stage())
        reference = pipeline.run_sequential(range(24))
        config = GraspConfig.adaptive()
        config.execution.chunk_size = 3
        result = Grasp(skeleton=Pipeline(three_stage()), grid=hetero_grid(),
                       config=config, backend=backend).run(inputs=range(24))
        assert result.outputs == reference
        assert result.total_tasks == 24

    def test_chunking_folds_decision_samples(self):
        # chunk_size=k folds k consecutive completions into one decision
        # sample, so a chunked run judges fewer (coarser) samples while
        # computing exactly the same stream.
        def run(chunk):
            config = GraspConfig.non_adaptive()
            config.execution.chunk_size = chunk
            return Grasp(skeleton=Pipeline(three_stage()),
                         grid=hetero_grid(), config=config,
                         ).run(inputs=range(25))

        plain, chunked = run(1), run(3)
        assert chunked.outputs == plain.outputs
        samples = lambda res: sum(len(r.unit_times)
                                  for r in res.execution.rounds)
        assert 0 < samples(chunked) < samples(plain)


class TestPlanExecutorValidation:
    def test_rejects_non_plan(self):
        grid = GridBuilder().homogeneous(nodes=2).build(seed=0)
        sim = GridSimulator(grid)
        with pytest.raises(ExecutionError, match="not an execution plan"):
            PlanExecutor("nope", sim, GraspConfig(), grid.node_ids[0],
                         grid.node_ids)

    def test_rejects_unknown_master_and_empty_pool(self):
        grid = GridBuilder().homogeneous(nodes=2).build(seed=0)
        plan = TaskFarm(worker=lambda x: x).lower()
        with pytest.raises(ExecutionError, match="unknown master"):
            PlanExecutor(plan, GridSimulator(grid), GraspConfig(), "ghost",
                         grid.node_ids)
        with pytest.raises(ExecutionError, match="non-empty"):
            PlanExecutor(plan, GridSimulator(grid), GraspConfig(),
                         grid.node_ids[0], [])

    def test_fan_accepts_any_task_sequence(self):
        # Regression: fan walks consume the queue with popleft/extendleft;
        # the public as_completed must normalise a plain list first.
        import collections

        from repro.core.calibration import calibrate

        grid = GridBuilder().homogeneous(nodes=3).build(seed=0)
        sim = GridSimulator(grid)
        farm = TaskFarm(worker=lambda x: x * 2)
        tasks = collections.deque(farm.make_tasks(range(8)))
        calibration = calibrate(tasks, grid.node_ids, farm.execute_task, sim,
                                GraspConfig().calibration, grid.node_ids[0],
                                at_time=0.0)
        executor = PlanExecutor(farm.lower(), sim, GraspConfig(),
                                grid.node_ids[0], grid.node_ids)
        report = executor.run(list(tasks), calibration)
        assert sorted(r.output for r in report.results) == \
            sorted(t.payload * 2 for t in tasks)

    def test_min_nodes_resolution(self):
        grid = GridBuilder().homogeneous(nodes=4).build(seed=0)
        sim = GridSimulator(grid)
        chain = Pipeline(three_stage()).lower()
        assert PlanExecutor(chain, sim, GraspConfig(), grid.node_ids[0],
                            grid.node_ids).min_nodes == 3
        fan = FanPlan(body=lambda t: t.payload, min_nodes=2)
        assert PlanExecutor(fan, sim, GraspConfig(), grid.node_ids[0],
                            grid.node_ids).min_nodes == 2

    def test_chain_plan_hint_overrides_config_chunk(self):
        # A plan-level chunk hint wins over the config's chunk_size.
        chain = dataclasses.replace(Pipeline(three_stage()).lower(),
                                    chunk_size=2)
        assert isinstance(chain, ChainPlan)
        config = GraspConfig.non_adaptive()
        config.execution.chunk_size = 1
        grid = GridBuilder().homogeneous(nodes=4).named("hint").build(seed=0)
        from repro.backends import SimulatedBackend

        backend = SimulatedBackend(GridSimulator(grid))
        import collections

        from repro.core.calibration import calibrate
        from repro.core.program import SkeletalProgram

        program = SkeletalProgram(Pipeline(three_stage()), config)
        tasks = program.make_tasks(range(13))
        calibration = calibrate(
            tasks=tasks, pool=list(grid.node_ids),
            execute_fn=program.execute_task, config=config.calibration,
            master_node=grid.node_ids[0], min_nodes=3, at_time=0.0,
            consume=True, backend=backend,
        )
        executor = PlanExecutor(chain, backend, config, grid.node_ids[0],
                                grid.node_ids)
        report = executor.run(collections.deque(tasks), calibration)
        # 13 - calibration sample, all completed despite the hinted chunking.
        assert len(report.results) == 13 - calibration.consumed_tasks
