"""Tests for the adaptive pipeline executor (Algorithm 2 for the pipeline)."""

from __future__ import annotations

import collections
import dataclasses

import pytest

from repro.core.calibration import calibrate
from repro.core.parameters import (
    AdaptationAction,
    CalibrationConfig,
    ExecutionConfig,
    GraspConfig,
)
from repro.core.pipeline_executor import (
    PipelineExecutor,
    StageMapping,
    build_stage_mapping,
)
from repro.exceptions import ExecutionError
from repro.grid.load import StepLoad
from repro.grid.node import GridNode
from repro.grid.simulator import GridSimulator
from repro.grid.topology import GridTopology
from repro.skeletons.pipeline import Pipeline, Stage


def weighted_pipeline() -> Pipeline:
    """Three stages with 1:4:1 cost weights and checkable arithmetic."""
    return Pipeline([
        Stage(lambda x: x + 1, cost_model=lambda i: 1.0, name="light-a"),
        Stage(lambda x: x * 2, cost_model=lambda i: 4.0, name="heavy", replicable=True),
        Stage(lambda x: x - 3, cost_model=lambda i: 1.0, name="light-b"),
    ])


def run_pipeline(grid, pipeline, n_items, config=None):
    config = config or GraspConfig()
    sim = GridSimulator(grid)
    master = grid.node_ids[0]
    tasks = [
        dataclasses.replace(t, cost=pipeline.total_cost(t.payload))
        for t in pipeline.make_tasks(range(n_items))
    ]
    queue = collections.deque(tasks)
    calibration = calibrate(queue, grid.node_ids,
                            lambda t: pipeline.run_item(t.payload), sim,
                            config.calibration, master,
                            min_nodes=pipeline.num_stages, at_time=0.0)
    executor = PipelineExecutor(pipeline, sim, config, master, grid.node_ids)
    report = executor.run(list(queue), calibration)
    return report, calibration


class TestStageMapping:
    def test_heaviest_stage_gets_fittest_node(self):
        pipe = weighted_pipeline()
        mapping = build_stage_mapping(pipe, ["best", "mid", "worst"], sample_item=1)
        assert mapping.nodes_for(1) == ["best"]     # heavy stage
        assert set(mapping.nodes_for(0) + mapping.nodes_for(2)) == {"mid", "worst"}

    def test_too_few_nodes_rejected(self):
        with pytest.raises(ExecutionError):
            build_stage_mapping(weighted_pipeline(), ["only", "two"], sample_item=1)

    def test_replication_uses_spare_nodes(self):
        pipe = weighted_pipeline()
        mapping = build_stage_mapping(pipe, ["a", "b", "c", "d", "e"], sample_item=1,
                                      replicate=True)
        assert len(mapping.nodes_for(1)) >= 2  # heavy replicable stage replicated
        assert set(mapping.all_nodes()) == {"a", "b", "c", "d", "e"}

    def test_no_replication_leaves_spares_unused(self):
        pipe = weighted_pipeline()
        mapping = build_stage_mapping(pipe, ["a", "b", "c", "d"], sample_item=1,
                                      replicate=False)
        assert len(mapping.all_nodes()) == 3

    def test_pick_node_prefers_earliest_free_replica(self):
        mapping = StageMapping({0: ["x", "y"]})
        free_at = {"x": 10.0, "y": 2.0}
        assert mapping.pick_node(0, lambda n: free_at[n]) == "y"

    def test_empty_mapping_rejected(self):
        with pytest.raises(ExecutionError):
            StageMapping({})
        with pytest.raises(ExecutionError):
            StageMapping({0: []})

    def test_equality_and_dict(self):
        a = StageMapping({0: ["x"], 1: ["y"]})
        b = StageMapping({0: ["x"], 1: ["y"]})
        assert a == b
        assert a.as_dict() == {0: ["x"], 1: ["y"]}


class TestPipelineExecution:
    def test_outputs_preserve_semantics(self, hetero_grid):
        pipe = weighted_pipeline()
        report, calibration = run_pipeline(hetero_grid, pipe, 30)
        expected = {i: ((i + 1) * 2) - 3 for i in range(30)}
        for result in list(report.results) + list(calibration.results):
            assert result.output == expected[result.task_id]
        all_ids = {r.task_id for r in report.results} | {
            r.task_id for r in calibration.results
        }
        assert all_ids == set(range(30))

    def test_pipelining_overlaps_items(self, dedicated_grid):
        """With S stages of equal cost, streaming N items must take far less
        than N × (S × stage_time): steady-state throughput is one item per
        stage time."""
        pipe = Pipeline([Stage(lambda x: x, cost_model=lambda i: 10.0,
                               name=f"s{k}") for k in range(3)])
        report, _ = run_pipeline(dedicated_grid, pipe, 20)
        stage_time = 10.0 / 2.0  # cost 10 on speed-2 nodes
        sequential_estimate = 20 * 3 * stage_time
        assert report.finished < 0.6 * sequential_estimate

    def test_monitoring_rounds_recorded(self, hetero_grid):
        report, _ = run_pipeline(hetero_grid, weighted_pipeline(), 40)
        assert report.rounds
        assert all(r.unit_times for r in report.rounds)

    def test_empty_items_rejected(self, hetero_grid):
        pipe = weighted_pipeline()
        sim = GridSimulator(hetero_grid)
        master = hetero_grid.node_ids[0]
        queue = collections.deque(pipe.make_tasks(range(5)))
        calibration = calibrate(queue, hetero_grid.node_ids,
                                lambda t: pipe.run_item(t.payload), sim,
                                CalibrationConfig(), master,
                                min_nodes=pipe.num_stages, at_time=0.0)
        executor = PipelineExecutor(pipe, sim, GraspConfig(), master,
                                    hetero_grid.node_ids)
        with pytest.raises(ExecutionError):
            executor.run([], calibration)

    def test_unknown_master_rejected(self, hetero_grid):
        sim = GridSimulator(hetero_grid)
        with pytest.raises(ExecutionError):
            PipelineExecutor(weighted_pipeline(), sim, GraspConfig(), "ghost",
                             hetero_grid.node_ids)


class TestPipelineAdaptation:
    def make_spike_grid(self):
        """The node that will host the heavy stage degrades at t=20."""
        nodes = [
            GridNode(node_id="big", speed=8.0,
                     load_model=StepLoad(steps=[(20.0, 0.95)], initial=0.0)),
            GridNode(node_id="mid1", speed=4.0),
            GridNode(node_id="mid2", speed=4.0),
            GridNode(node_id="small1", speed=2.0),
            GridNode(node_id="small2", speed=2.0),
        ]
        return GridTopology(nodes=nodes, wan_latency=1e-4, wan_bandwidth=1e8)

    def test_stage_load_spike_triggers_remap(self):
        grid = self.make_spike_grid()
        pipe = weighted_pipeline()
        config = GraspConfig(
            execution=ExecutionConfig(threshold_factor=1.5,
                                      adaptation=AdaptationAction.RECALIBRATE),
        )
        report, _ = run_pipeline(grid, pipe, 120, config=config)
        assert report.breaches >= 1
        assert report.recalibrations >= 1
        assert len(report.chosen_history) >= 2
        # After remapping, the degraded node should no longer host the heavy stage.
        final_nodes = report.chosen_history[-1]
        assert "big" not in final_nodes[:1] or report.recalibrations == 0

    def test_adaptive_beats_frozen_mapping_under_spike(self):
        pipe_factory = weighted_pipeline
        adaptive, _ = run_pipeline(self.make_spike_grid(), pipe_factory(), 120,
                                   config=GraspConfig.adaptive())
        frozen, _ = run_pipeline(self.make_spike_grid(), pipe_factory(), 120,
                                 config=GraspConfig.non_adaptive())
        assert adaptive.finished < frozen.finished

    def test_migration_cost_charged_on_remap(self):
        grid = self.make_spike_grid()
        pipe = weighted_pipeline()
        config = GraspConfig(
            execution=ExecutionConfig(threshold_factor=1.5, migration_bytes=10_000_000),
        )
        with_migration, _ = run_pipeline(grid, pipe, 120, config=config)
        cheap_config = GraspConfig(execution=ExecutionConfig(threshold_factor=1.5))
        without_migration, _ = run_pipeline(self.make_spike_grid(), weighted_pipeline(),
                                            120, config=cheap_config)
        if with_migration.recalibrations and without_migration.recalibrations:
            assert with_migration.finished >= without_migration.finished

    def test_replication_improves_throughput_for_heavy_stage(self, dedicated_grid):
        pipe_factory = weighted_pipeline
        replicated_cfg = GraspConfig(
            calibration=CalibrationConfig(select_fraction=1.0),
            execution=ExecutionConfig(replicate_stages=True),
        )
        plain, _ = run_pipeline(dedicated_grid, pipe_factory(), 60,
                                config=GraspConfig.non_adaptive())
        replicated, _ = run_pipeline(dedicated_grid, pipe_factory(), 60,
                                     config=replicated_cfg)
        # Replicating the dominant stage over spare nodes must not be slower.
        assert replicated.finished <= plain.finished * 1.05
