"""Tests for deterministic RNG stream management."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.rng import RngStream, derive_seed, make_rng


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "a") == derive_seed(42, "a")

    def test_distinct_names_differ(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_distinct_base_seeds_differ(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_result_is_non_negative_63_bit(self):
        for name in ["x", "y", "load/node0", ""]:
            seed = derive_seed(123, name)
            assert 0 <= seed < 2 ** 63


class TestMakeRng:
    def test_same_name_same_sequence(self):
        a = make_rng(7, "stream").random(5)
        b = make_rng(7, "stream").random(5)
        assert np.allclose(a, b)

    def test_different_names_different_sequences(self):
        a = make_rng(7, "stream-a").random(5)
        b = make_rng(7, "stream-b").random(5)
        assert not np.allclose(a, b)

    def test_returns_generator(self):
        assert isinstance(make_rng(0), np.random.Generator)


class TestRngStream:
    def test_get_is_cached(self):
        streams = RngStream(seed=3)
        assert streams.get("x") is streams.get("x")

    def test_different_names_are_independent_objects(self):
        streams = RngStream(seed=3)
        assert streams.get("x") is not streams.get("y")

    def test_contains_and_len(self):
        streams = RngStream(seed=3)
        assert "x" not in streams
        streams.get("x")
        assert "x" in streams
        assert len(streams) == 1

    def test_reset_single(self):
        streams = RngStream(seed=3)
        first = streams.get("x").random()
        streams.reset("x")
        again = streams.get("x").random()
        assert first == pytest.approx(again)

    def test_reset_all(self):
        streams = RngStream(seed=3)
        streams.get("x")
        streams.get("y")
        streams.reset()
        assert len(streams) == 0

    def test_spawn_is_independent(self):
        parent = RngStream(seed=3)
        child = parent.spawn("child")
        a = parent.get("x").random(4)
        b = child.get("x").random(4)
        assert not np.allclose(a, b)

    def test_spawn_deterministic(self):
        a = RngStream(seed=3).spawn("c").get("x").random(4)
        b = RngStream(seed=3).spawn("c").get("x").random(4)
        assert np.allclose(a, b)
