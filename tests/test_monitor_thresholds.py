"""Tests for the performance threshold Z (Algorithm 2's decision rule)."""

from __future__ import annotations

import math

import pytest

from repro.exceptions import ConfigurationError
from repro.monitor.thresholds import (
    AbsoluteThreshold,
    AdaptiveThreshold,
    RelativeThreshold,
)
from repro.utils.validation import ConfigurationError as ValidationError


class TestAbsoluteThreshold:
    def test_value(self):
        assert AbsoluteThreshold(z=2.0).value() == 2.0

    def test_breached_uses_minimum(self):
        threshold = AbsoluteThreshold(z=2.0)
        # min is 1.5 <= 2.0: not breached even though some times are large.
        assert not threshold.breached([1.5, 10.0, 50.0])
        # min is 2.5 > 2.0: breached.
        assert threshold.breached([2.5, 3.0])

    def test_empty_round_never_breaches(self):
        assert not AbsoluteThreshold(z=1.0).breached([])

    def test_boundary_is_not_breach(self):
        assert not AbsoluteThreshold(z=2.0).breached([2.0])

    def test_invalid_value(self):
        with pytest.raises(ConfigurationError):
            AbsoluteThreshold(z=0.0)


class TestRelativeThreshold:
    def test_infinite_before_calibration(self):
        threshold = RelativeThreshold(factor=1.5)
        assert math.isinf(threshold.value())
        assert not threshold.breached([1e9])

    def test_calibrate_sets_median_reference(self):
        threshold = RelativeThreshold(factor=2.0)
        threshold.calibrate([1.0, 2.0, 3.0])
        assert threshold.reference == pytest.approx(2.0)
        assert threshold.value() == pytest.approx(4.0)

    def test_breach_after_calibration(self):
        threshold = RelativeThreshold(factor=1.5)
        threshold.calibrate([1.0, 1.0, 1.0])
        assert not threshold.breached([1.4, 2.0])
        assert threshold.breached([1.6, 2.0])

    def test_explicit_reference(self):
        threshold = RelativeThreshold(factor=3.0, reference=2.0)
        assert threshold.value() == pytest.approx(6.0)

    def test_empty_calibration_rejected(self):
        with pytest.raises(ConfigurationError):
            RelativeThreshold().calibrate([])

    def test_zero_times_fall_back_to_small_reference(self):
        threshold = RelativeThreshold(factor=2.0)
        threshold.calibrate([0.0, 0.0])
        assert threshold.value() > 0.0

    def test_invalid_factor(self):
        with pytest.raises(ValidationError):
            RelativeThreshold(factor=0.0)

    def test_observe_is_noop(self):
        threshold = RelativeThreshold(factor=2.0)
        threshold.calibrate([1.0])
        threshold.observe([100.0, 200.0])
        assert threshold.value() == pytest.approx(2.0)


class TestAdaptiveThreshold:
    def test_reference_drifts_toward_quantile(self):
        threshold = AdaptiveThreshold(factor=1.5, quantile=0.0, adaptation_rate=0.5)
        threshold.calibrate([1.0])
        threshold.observe([3.0, 5.0])  # min quantile target = 3.0
        assert threshold.reference == pytest.approx(2.0)  # 1 + 0.5*(3-1)
        threshold.observe([3.0, 5.0])
        assert threshold.reference == pytest.approx(2.5)

    def test_no_drift_before_calibration(self):
        threshold = AdaptiveThreshold()
        threshold.observe([5.0])
        assert threshold.reference is None

    def test_empty_round_ignored(self):
        threshold = AdaptiveThreshold()
        threshold.calibrate([1.0])
        threshold.observe([])
        assert threshold.reference == pytest.approx(1.0)

    def test_still_fires_on_relative_degradation(self):
        threshold = AdaptiveThreshold(factor=1.5, quantile=0.25, adaptation_rate=0.2)
        threshold.calibrate([1.0, 1.0, 1.0])
        # All nodes suddenly 3x slower: min time 3 > 1.5.
        assert threshold.breached([3.0, 3.1, 3.2])

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            AdaptiveThreshold(quantile=1.5)
        with pytest.raises(ConfigurationError):
            AdaptiveThreshold(adaptation_rate=0.0)
