"""Tests for collective-operation cost algorithms."""

from __future__ import annotations


import pytest

from repro.comm.collectives import (
    binomial_tree_rounds,
    broadcast_completion_times,
    gather_completion_time,
    scatter_completion_times,
)
from repro.exceptions import CommunicationError


def constant_transfer(duration: float):
    """A transfer-time function ignoring endpoints and size."""
    return lambda src, dst, nbytes, t: duration


class TestBinomialTreeRounds:
    def test_power_of_two(self):
        rounds = binomial_tree_rounds(8)
        assert len(rounds) == 3
        assert rounds[0] == [(0, 1)]
        assert rounds[1] == [(0, 2), (1, 3)]
        assert rounds[2] == [(0, 4), (1, 5), (2, 6), (3, 7)]

    def test_non_power_of_two(self):
        rounds = binomial_tree_rounds(5)
        participants = {0}
        for pairs in rounds:
            for src, dst in pairs:
                assert src in participants
                participants.add(dst)
        assert participants == set(range(5))

    def test_single_rank(self):
        assert binomial_tree_rounds(1) == []

    def test_invalid_size(self):
        with pytest.raises(CommunicationError):
            binomial_tree_rounds(0)


class TestBroadcast:
    def test_tree_broadcast_log_depth(self):
        times = broadcast_completion_times(8, 100.0, 0.0, constant_transfer(1.0))
        assert times[0] == 0.0
        assert max(times.values()) == pytest.approx(3.0)  # log2(8) rounds
        assert set(times) == set(range(8))

    def test_linear_broadcast_linear_depth(self):
        times = broadcast_completion_times(8, 100.0, 0.0, constant_transfer(1.0),
                                           algorithm="linear")
        assert max(times.values()) == pytest.approx(7.0)

    def test_tree_faster_than_linear_for_large_groups(self):
        tree = broadcast_completion_times(16, 1.0, 0.0, constant_transfer(1.0))
        linear = broadcast_completion_times(16, 1.0, 0.0, constant_transfer(1.0),
                                            algorithm="linear")
        assert max(tree.values()) < max(linear.values())

    def test_nonzero_start_time(self):
        times = broadcast_completion_times(4, 1.0, 10.0, constant_transfer(0.5))
        assert times[0] == 10.0
        assert all(t >= 10.0 for t in times.values())

    def test_non_default_root(self):
        times = broadcast_completion_times(4, 1.0, 0.0, constant_transfer(1.0), root=2)
        assert times[2] == 0.0
        assert set(times) == {0, 1, 2, 3}

    def test_single_rank(self):
        assert broadcast_completion_times(1, 1.0, 5.0, constant_transfer(1.0)) == {0: 5.0}

    def test_invalid_algorithm(self):
        with pytest.raises(CommunicationError):
            broadcast_completion_times(2, 1.0, 0.0, constant_transfer(1.0),
                                       algorithm="quantum")

    def test_invalid_root(self):
        with pytest.raises(CommunicationError):
            broadcast_completion_times(2, 1.0, 0.0, constant_transfer(1.0), root=5)


class TestScatter:
    def test_sequential_sends_accumulate(self):
        times = scatter_completion_times(4, [10.0] * 4, 0.0, constant_transfer(1.0))
        assert times[0] == 0.0
        others = sorted(times[r] for r in range(1, 4))
        assert others == [pytest.approx(1.0), pytest.approx(2.0), pytest.approx(3.0)]

    def test_root_chunk_immediate(self):
        times = scatter_completion_times(3, [1.0, 2.0, 3.0], 7.0, constant_transfer(0.1),
                                         root=1)
        assert times[1] == 7.0

    def test_wrong_chunk_count_rejected(self):
        with pytest.raises(CommunicationError):
            scatter_completion_times(3, [1.0, 2.0], 0.0, constant_transfer(1.0))


class TestGather:
    def test_receives_in_ready_order(self):
        # Rank 2 is ready first, then rank 1; root (0) receives serially.
        finish = gather_completion_time(
            3, [10.0, 10.0, 10.0], [0.0, 5.0, 1.0], constant_transfer(2.0)
        )
        # rank2 at max(0,1)+2 = 3; rank1 at max(3,5)+2 = 7
        assert finish == pytest.approx(7.0)

    def test_single_rank(self):
        assert gather_completion_time(1, [0.0], [4.0], constant_transfer(1.0)) == 4.0

    def test_receiver_serialisation(self):
        finish = gather_completion_time(
            5, [1.0] * 5, [0.0] * 5, constant_transfer(1.0)
        )
        assert finish == pytest.approx(4.0)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(CommunicationError):
            gather_completion_time(3, [1.0, 2.0], [0.0, 0.0, 0.0], constant_transfer(1.0))

    def test_invalid_root(self):
        with pytest.raises(CommunicationError):
            gather_completion_time(2, [1.0, 1.0], [0.0, 0.0], constant_transfer(1.0),
                                   root=9)
