"""Tests for the discrete-event queue and synthetic load traces."""

from __future__ import annotations

import io

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, GridError
from repro.grid.events import Event, EventQueue
from repro.grid.load import TraceLoad
from repro.grid.traces import (
    LoadTrace,
    generate_node_traces,
    generate_trace,
    read_trace_csv,
    write_trace_csv,
)


class TestEventQueue:
    def test_pop_order_by_time(self):
        q = EventQueue()
        q.schedule(5.0, "b")
        q.schedule(1.0, "a")
        q.schedule(3.0, "c")
        kinds = [q.pop().kind for _ in range(3)]
        assert kinds == ["a", "c", "b"]

    def test_ties_broken_by_insertion_order(self):
        q = EventQueue()
        q.schedule(1.0, "first")
        q.schedule(1.0, "second")
        assert q.pop().kind == "first"
        assert q.pop().kind == "second"

    def test_clock_advances_on_pop(self):
        q = EventQueue()
        q.schedule(2.0, "x")
        assert q.now == 0.0
        q.pop()
        assert q.now == 2.0

    def test_schedule_in_past_rejected(self):
        q = EventQueue()
        q.schedule(5.0, "x")
        q.pop()
        with pytest.raises(GridError):
            q.schedule(1.0, "y")

    def test_schedule_in_relative(self):
        q = EventQueue(start_time=10.0)
        event = q.schedule_in(2.5, "x")
        assert event.time == pytest.approx(12.5)
        with pytest.raises(GridError):
            q.schedule_in(-1.0, "y")

    def test_peek_does_not_remove(self):
        q = EventQueue()
        q.schedule(1.0, "x")
        assert q.peek().kind == "x"
        assert len(q) == 1

    def test_pop_empty_raises(self):
        with pytest.raises(GridError):
            EventQueue().pop()

    def test_bool_and_len(self):
        q = EventQueue()
        assert not q
        q.schedule(1.0)
        assert q and len(q) == 1

    def test_drain(self):
        q = EventQueue()
        for t in (3.0, 1.0, 2.0):
            q.schedule(t)
        times = [e.time for e in q.drain()]
        assert times == [1.0, 2.0, 3.0]

    def test_run_until_with_handler_scheduling_more(self):
        q = EventQueue()
        q.schedule(1.0, "seed", payload=3)

        seen = []

        def handler(event: Event):
            seen.append(event.time)
            if event.payload and event.payload > 0:
                q.schedule(event.time + 1.0, "chain", payload=event.payload - 1)

        processed = q.run_until(handler)
        assert processed == 4
        assert seen == [1.0, 2.0, 3.0, 4.0]

    def test_run_until_stop_time(self):
        q = EventQueue()
        for t in (1.0, 2.0, 3.0):
            q.schedule(t)
        processed = q.run_until(lambda e: None, stop_time=2.0)
        assert processed == 2
        assert len(q) == 1

    def test_run_until_max_events(self):
        q = EventQueue()
        for t in (1.0, 2.0, 3.0):
            q.schedule(t)
        assert q.run_until(lambda e: None, max_events=1) == 1


class TestTraces:
    def test_generate_trace_shape(self):
        trace = generate_trace("n0", duration=100.0, step=5.0, seed=1)
        assert len(trace.times) == 21
        assert trace.duration == pytest.approx(100.0)
        assert all(0.0 <= level <= 0.95 for level in trace.levels)

    def test_generate_trace_deterministic(self):
        a = generate_trace("n0", duration=50.0, seed=3)
        b = generate_trace("n0", duration=50.0, seed=3)
        assert a.levels == b.levels

    def test_generate_trace_invalid_params(self):
        with pytest.raises(ConfigurationError):
            generate_trace("n0", duration=0.0)
        with pytest.raises(ConfigurationError):
            generate_trace("n0", duration=10.0, step=0.0)

    def test_generate_node_traces_are_independent(self):
        traces = generate_node_traces(["a", "b"], duration=100.0, seed=0)
        assert traces["a"].levels != traces["b"].levels

    def test_to_load_model(self):
        trace = LoadTrace(node_id="n", times=(0.0, 10.0), levels=(0.1, 0.7))
        model = trace.to_load_model()
        assert isinstance(model, TraceLoad)
        assert model.utilisation(5.0) == pytest.approx(0.1)
        assert model.utilisation(15.0) == pytest.approx(0.7)

    def test_mean_level(self):
        trace = LoadTrace(node_id="n", times=(0.0, 1.0), levels=(0.2, 0.4))
        assert trace.mean_level() == pytest.approx(0.3)

    def test_invalid_trace_rejected(self):
        with pytest.raises(ConfigurationError):
            LoadTrace(node_id="n", times=(0.0,), levels=())
        with pytest.raises(ConfigurationError):
            LoadTrace(node_id="n", times=(), levels=())

    def test_csv_round_trip(self):
        traces = generate_node_traces(["a", "b"], duration=30.0, seed=2)
        buffer = io.StringIO()
        write_trace_csv(list(traces.values()), buffer)
        buffer.seek(0)
        loaded = read_trace_csv(buffer)
        assert set(loaded) == {"a", "b"}
        assert np.allclose(loaded["a"].levels, traces["a"].levels)
        assert np.allclose(loaded["a"].times, traces["a"].times)

    def test_csv_file_round_trip(self, tmp_path):
        trace = generate_trace("solo", duration=20.0, seed=5)
        path = tmp_path / "trace.csv"
        write_trace_csv(trace, path)
        loaded = read_trace_csv(path)
        assert "solo" in loaded
        assert np.allclose(loaded["solo"].levels, trace.levels)
