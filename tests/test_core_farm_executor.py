"""Tests for the adaptive farm executor (Algorithm 2 for the task farm)."""

from __future__ import annotations

import collections

import pytest

from repro.core.calibration import calibrate
from repro.core.farm_executor import FarmExecutor
from repro.core.parameters import (
    AdaptationAction,
    CalibrationConfig,
    ExecutionConfig,
    GraspConfig,
)
from repro.exceptions import ExecutionError
from repro.grid.failures import PermanentFailure
from repro.grid.load import StepLoad
from repro.grid.node import GridNode
from repro.grid.simulator import GridSimulator
from repro.grid.topology import GridTopology
from repro.skeletons.taskfarm import TaskFarm


def run_farm(grid, farm, n_tasks, config=None):
    """Calibrate then execute a farm over ``grid``; return (report, calibration)."""
    config = config or GraspConfig()
    sim = GridSimulator(grid)
    tasks = collections.deque(farm.make_tasks(range(n_tasks)))
    master = grid.node_ids[0]
    calibration = calibrate(tasks, grid.node_ids, farm.execute_task, sim,
                            config.calibration, master, min_nodes=2, at_time=0.0)
    executor = FarmExecutor(farm.execute_task, sim, config, master,
                            grid.node_ids, min_nodes=2)
    report = executor.run(tasks, calibration)
    return report, calibration


class TestBasicExecution:
    def test_all_tasks_complete_with_correct_outputs(self, hetero_grid):
        farm = TaskFarm(worker=lambda x: x * 3)
        report, calibration = run_farm(hetero_grid, farm, 60)
        all_ids = {r.task_id for r in report.results} | {
            r.task_id for r in calibration.results
        }
        assert all_ids == set(range(60))
        for result in report.results:
            assert result.output == result.task_id * 3

    def test_no_duplicate_results(self, hetero_grid):
        farm = TaskFarm(worker=lambda x: x)
        report, calibration = run_farm(hetero_grid, farm, 40)
        ids = [r.task_id for r in report.results] + [r.task_id for r in calibration.results]
        assert len(ids) == len(set(ids))

    def test_report_time_bounds(self, hetero_grid):
        farm = TaskFarm(worker=lambda x: x)
        report, calibration = run_farm(hetero_grid, farm, 30)
        assert report.started == pytest.approx(calibration.finished)
        assert report.finished >= report.started
        assert all(r.finished <= report.finished + 1e-9 for r in report.results)

    def test_monitoring_rounds_recorded(self, hetero_grid):
        farm = TaskFarm(worker=lambda x: x)
        report, _ = run_farm(hetero_grid, farm, 50)
        assert len(report.rounds) >= 1
        for rnd in report.rounds:
            assert rnd.unit_times
            assert rnd.finished >= rnd.started
            assert rnd.min_time == min(rnd.unit_times)

    def test_faster_nodes_do_more_work_on_dedicated_grid(self, hetero_grid):
        farm = TaskFarm(worker=lambda x: x, cost_model=lambda item: 5.0)
        report, calibration = run_farm(hetero_grid, farm, 120)
        counts = report.per_node_counts()
        speeds = hetero_grid.speeds()
        fastest = max(speeds, key=speeds.get)
        slowest_workers = [n for n in counts if n != fastest]
        if fastest in counts and slowest_workers:
            assert counts[fastest] >= max(counts[n] for n in slowest_workers) * 0.8

    def test_master_excluded_by_default(self, hetero_grid):
        farm = TaskFarm(worker=lambda x: x)
        report, _ = run_farm(hetero_grid, farm, 40)
        master = hetero_grid.node_ids[0]
        assert master not in report.per_node_counts()

    def test_master_computes_when_configured(self, hetero_grid):
        config = GraspConfig(execution=ExecutionConfig(master_computes=True))
        farm = TaskFarm(worker=lambda x: x, cost_model=lambda item: 20.0)
        report, calibration = run_farm(hetero_grid, farm, 80, config=config)
        master = hetero_grid.node_ids[0]
        all_nodes = set(report.per_node_counts()) | set(
            r.node_id for r in calibration.results
        )
        assert master in all_nodes


class TestAdaptation:
    def make_spike_grid(self):
        """Fastest two nodes become heavily loaded at t=5."""
        nodes = [
            GridNode(node_id="n0", speed=1.0),
            GridNode(node_id="n1", speed=1.0),
            GridNode(node_id="n2", speed=2.0),
            GridNode(node_id="n3", speed=8.0,
                     load_model=StepLoad(steps=[(5.0, 0.95)], initial=0.0)),
            GridNode(node_id="n4", speed=8.0,
                     load_model=StepLoad(steps=[(5.0, 0.95)], initial=0.0)),
        ]
        return GridTopology(nodes=nodes, wan_latency=1e-4, wan_bandwidth=1e8)

    def test_load_spike_triggers_recalibration(self):
        grid = self.make_spike_grid()
        farm = TaskFarm(worker=lambda x: x, cost_model=lambda item: 4.0)
        config = GraspConfig(
            calibration=CalibrationConfig(),
            execution=ExecutionConfig(threshold_factor=1.5,
                                      adaptation=AdaptationAction.RECALIBRATE),
        )
        report, _ = run_farm(grid, farm, 150, config=config)
        assert report.breaches >= 1
        assert report.recalibrations >= 1
        assert len(report.recalibration_reports) == report.recalibrations
        assert len(report.chosen_history) >= 2

    def test_adaptation_disabled_records_breaches_without_acting(self):
        grid = self.make_spike_grid()
        farm = TaskFarm(worker=lambda x: x, cost_model=lambda item: 4.0)
        config = GraspConfig(
            execution=ExecutionConfig(adaptation=AdaptationAction.NONE,
                                      threshold_factor=1.5),
        )
        report, _ = run_farm(grid, farm, 150, config=config)
        assert report.recalibrations == 0
        assert report.breaches >= 1

    def test_adaptive_beats_non_adaptive_under_spike(self):
        farm_factory = lambda: TaskFarm(worker=lambda x: x, cost_model=lambda item: 4.0)
        adaptive_report, _ = run_farm(self.make_spike_grid(), farm_factory(), 150,
                                      config=GraspConfig.adaptive())
        frozen_report, _ = run_farm(self.make_spike_grid(), farm_factory(), 150,
                                    config=GraspConfig.non_adaptive())
        assert adaptive_report.finished < frozen_report.finished

    def test_rerank_adaptation_mode(self):
        grid = self.make_spike_grid()
        farm = TaskFarm(worker=lambda x: x, cost_model=lambda item: 4.0)
        config = GraspConfig(
            execution=ExecutionConfig(adaptation=AdaptationAction.RERANK,
                                      threshold_factor=1.5),
        )
        report, _ = run_farm(grid, farm, 150, config=config)
        assert report.recalibrations >= 1
        # RERANK does not run fresh calibration probes.
        assert report.recalibration_reports == []

    def test_max_recalibrations_respected(self):
        grid = self.make_spike_grid()
        farm = TaskFarm(worker=lambda x: x, cost_model=lambda item: 4.0)
        config = GraspConfig(
            execution=ExecutionConfig(threshold_factor=1.05, max_recalibrations=1),
        )
        report, _ = run_farm(grid, farm, 200, config=config)
        assert report.recalibrations <= 1


class TestFailures:
    def test_node_failure_mid_run_recovers(self):
        nodes = [GridNode(node_id=f"n{i}", speed=2.0) for i in range(5)]
        grid = GridTopology(
            nodes=nodes,
            failure_model=PermanentFailure(failures={"n4": 6.0}),
            wan_latency=1e-4, wan_bandwidth=1e8,
        )
        farm = TaskFarm(worker=lambda x: x + 1, cost_model=lambda item: 3.0)
        report, calibration = run_farm(grid, farm, 80)
        all_ids = {r.task_id for r in report.results} | {
            r.task_id for r in calibration.results
        }
        assert all_ids == set(range(80))
        # The dead node stops receiving work after its failure time.
        for result in report.results:
            if result.node_id == "n4":
                assert result.started < 6.0 + 1e-6

    def test_all_workers_dead_raises(self):
        nodes = [GridNode(node_id="n0", speed=1.0), GridNode(node_id="n1", speed=1.0)]
        grid = GridTopology(
            nodes=nodes,
            failure_model=PermanentFailure(failures={"n0": 2.0, "n1": 2.0}),
        )
        farm = TaskFarm(worker=lambda x: x, cost_model=lambda item: 10.0)
        with pytest.raises(ExecutionError):
            run_farm(grid, farm, 50)


class TestValidation:
    def test_unknown_master_rejected(self, hetero_grid):
        sim = GridSimulator(hetero_grid)
        with pytest.raises(ExecutionError):
            FarmExecutor(lambda t: None, sim, GraspConfig(), "ghost",
                         hetero_grid.node_ids)

    def test_empty_pool_rejected(self, hetero_grid):
        sim = GridSimulator(hetero_grid)
        with pytest.raises(ExecutionError):
            FarmExecutor(lambda t: None, sim, GraspConfig(),
                         hetero_grid.node_ids[0], [])

    def test_report_validate_detects_missing_tasks(self, hetero_grid):
        farm = TaskFarm(worker=lambda x: x)
        report, calibration = run_farm(hetero_grid, farm, 30)
        with pytest.raises(ExecutionError):
            report.validate(expected_tasks=500)
        # Execution results alone exclude the calibration sample.
        report.validate(expected_tasks=30 - calibration.consumed_tasks)
