"""Tests for node failure/churn models."""

from __future__ import annotations

import math

import pytest

from repro.exceptions import ConfigurationError
from repro.grid.failures import (
    NoFailures,
    PermanentFailure,
    ScheduledFailures,
    TransientFailure,
)


class TestNoFailures:
    def test_always_available(self):
        model = NoFailures()
        assert model.available("any", 0.0)
        assert model.available("any", 1e9)

    def test_next_change_is_infinite(self):
        assert math.isinf(NoFailures().next_change("n", 0.0))


class TestPermanentFailure:
    def test_available_before_failure(self):
        model = PermanentFailure(failures={"n0": 10.0})
        assert model.available("n0", 9.99)

    def test_unavailable_at_and_after_failure(self):
        model = PermanentFailure(failures={"n0": 10.0})
        assert not model.available("n0", 10.0)
        assert not model.available("n0", 1000.0)

    def test_unlisted_nodes_never_fail(self):
        model = PermanentFailure(failures={"n0": 10.0})
        assert model.available("n1", 1e6)

    def test_next_change(self):
        model = PermanentFailure(failures={"n0": 10.0})
        assert model.next_change("n0", 0.0) == 10.0
        assert math.isinf(model.next_change("n0", 10.0))
        assert math.isinf(model.next_change("n1", 0.0))

    def test_at_convenience_kills_listed_nodes(self):
        model = PermanentFailure.at(2.5, "n0", "n1")
        assert model.failures == {"n0": 2.5, "n1": 2.5}
        assert model.available("n0", 2.0)
        assert not model.available("n0", 2.5)
        assert not model.available("n1", 3.0)
        assert model.available("n2", 1e6)

    def test_negative_time_rejected(self):
        with pytest.raises(ConfigurationError):
            PermanentFailure(failures={"n0": -1.0})


class TestScheduledFailures:
    def test_down_within_window(self):
        model = ScheduledFailures(windows={"n0": [(5.0, 10.0)]})
        assert model.available("n0", 4.9)
        assert not model.available("n0", 5.0)
        assert not model.available("n0", 9.99)
        assert model.available("n0", 10.0)

    def test_multiple_windows(self):
        model = ScheduledFailures(windows={"n0": [(5.0, 10.0), (20.0, 25.0)]})
        assert model.available("n0", 15.0)
        assert not model.available("n0", 22.0)

    def test_next_change_enumerates_boundaries(self):
        model = ScheduledFailures(windows={"n0": [(5.0, 10.0)]})
        assert model.next_change("n0", 0.0) == 5.0
        assert model.next_change("n0", 7.0) == 10.0
        assert math.isinf(model.next_change("n0", 11.0))

    def test_invalid_window_rejected(self):
        with pytest.raises(ConfigurationError):
            ScheduledFailures(windows={"n0": [(10.0, 5.0)]})

    def test_unlisted_node_always_up(self):
        model = ScheduledFailures(windows={"n0": [(5.0, 10.0)]})
        assert model.available("other", 7.0)


class TestTransientFailure:
    def test_initially_up(self):
        model = TransientFailure(seed=0)
        assert model.available("n0", 0.0)
        assert model.available("n0", -1.0)

    def test_deterministic_per_seed_and_node(self):
        a = TransientFailure(seed=1, p_fail=0.3, p_recover=0.5)
        b = TransientFailure(seed=1, p_fail=0.3, p_recover=0.5)
        times = [i * 10.0 for i in range(60)]
        assert [a.available("n0", t) for t in times] == [b.available("n0", t) for t in times]

    def test_different_nodes_get_different_patterns(self):
        model = TransientFailure(seed=1, p_fail=0.4, p_recover=0.4)
        times = [i * 10.0 for i in range(80)]
        pattern0 = [model.available("n0", t) for t in times]
        pattern1 = [model.available("n1", t) for t in times]
        assert pattern0 != pattern1

    def test_failures_do_happen(self):
        model = TransientFailure(seed=2, p_fail=0.5, p_recover=0.2)
        times = [i * 10.0 for i in range(200)]
        assert not all(model.available("n0", t) for t in times)

    def test_next_change_finds_a_flip(self):
        model = TransientFailure(seed=2, p_fail=0.5, p_recover=0.5)
        change = model.next_change("n0", 0.0)
        assert change > 0.0
        if not math.isinf(change):
            before = model.available("n0", change - model.epoch / 2)
            after = model.available("n0", change)
            assert before != after

    def test_invalid_epoch_rejected(self):
        with pytest.raises(ConfigurationError):
            TransientFailure(epoch=0.0)
