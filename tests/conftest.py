"""Shared fixtures for the test suite."""

from __future__ import annotations

import os

import pytest

from repro.grid.load import ConstantLoad, StepLoad
from repro.grid.node import GridNode
from repro.grid.topology import GridBuilder, GridTopology
from repro.grid.simulator import GridSimulator
from repro.sanitizers import locks as _locks
from repro.skeletons.pipeline import Pipeline, Stage
from repro.skeletons.taskfarm import TaskFarm


@pytest.fixture
def lock_sanitizer():
    """Force the lock-order sanitizer on for one test.

    Yields the default graph (reset on entry) so the test can inspect
    edges/violations; restores the forced-off state afterwards.  Note the
    instrumentation decision happens at lock *creation*, so runtime
    objects must be constructed inside the test for this to bite.
    """
    _locks.enable()
    _locks.reset()
    try:
        yield _locks.default_graph()
    finally:
        _locks.disable()
        _locks.reset()


@pytest.fixture(scope="session", autouse=True)
def _lock_sanitizer_session_check():
    """Under ``GRASP_SANITIZE=locks``, fail the run on any recorded inversion.

    This is the CI hook: the instrumented cluster/thread test subsets run
    with the env var set, and a lock-order violation anywhere in the run
    surfaces here even if no individual test asserted on it.
    """
    yield
    if "locks" in os.environ.get("GRASP_SANITIZE", ""):
        _locks.assert_clean()


@pytest.fixture
def dedicated_grid() -> GridTopology:
    """8 identical, dedicated nodes (no external load)."""
    return GridBuilder().homogeneous(nodes=8, speed=2.0).named("dedicated").build(seed=0)


@pytest.fixture
def hetero_grid() -> GridTopology:
    """8 heterogeneous, dedicated nodes with a 4x speed spread."""
    return GridBuilder().heterogeneous(nodes=8, speed_spread=4.0).named("hetero").build(seed=1)


@pytest.fixture
def dynamic_grid() -> GridTopology:
    """8 heterogeneous nodes with random-walk background load."""
    return (
        GridBuilder()
        .heterogeneous(nodes=8, speed_spread=4.0)
        .with_dynamic_load("randomwalk", mean_level=0.35)
        .named("dynamic")
        .build(seed=2)
    )


@pytest.fixture
def spike_grid() -> GridTopology:
    """Heterogeneous grid whose fastest node gets slammed at t=5."""
    nodes = [
        GridNode(node_id=f"s/n{i}", speed=speed, load_model=ConstantLoad(0.0), site="s")
        for i, speed in enumerate([1.0, 1.5, 2.0, 3.0, 4.0, 6.0])
    ]
    # Slam the two fastest nodes with 90% external load from t=5 onwards.
    nodes[-1] = nodes[-1].with_load(StepLoad(steps=[(5.0, 0.9)], initial=0.0))
    nodes[-2] = nodes[-2].with_load(StepLoad(steps=[(5.0, 0.9)], initial=0.0))
    return GridTopology(nodes=nodes, name="spike")


@pytest.fixture
def simulator(dedicated_grid: GridTopology) -> GridSimulator:
    """A simulator over the dedicated grid."""
    return GridSimulator(dedicated_grid)


@pytest.fixture
def square_farm() -> TaskFarm:
    """A trivial squaring farm with unit task cost."""
    return TaskFarm(worker=lambda x: x * x)


@pytest.fixture
def arithmetic_pipeline() -> Pipeline:
    """Three-stage arithmetic pipeline with known reference semantics."""
    return Pipeline(
        [
            Stage(lambda x: x + 1, name="inc"),
            Stage(lambda x: x * 2, name="dbl"),
            Stage(lambda x: x - 3, name="dec"),
        ]
    )
