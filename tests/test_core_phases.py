"""Tests for the GRASP phase model and timeline."""

from __future__ import annotations

import pytest

from repro.core.phases import Phase, PhaseTimeline
from repro.exceptions import GraspError


class TestPhase:
    def test_static_vs_dynamic(self):
        assert Phase.PROGRAMMING.is_static
        assert Phase.COMPILATION.is_static
        assert Phase.CALIBRATION.is_dynamic
        assert Phase.EXECUTION.is_dynamic

    def test_values(self):
        assert Phase.CALIBRATION.value == "calibration"


def well_formed_timeline() -> PhaseTimeline:
    timeline = PhaseTimeline()
    timeline.enter(Phase.PROGRAMMING, 0.0)
    timeline.leave(0.0)
    timeline.enter(Phase.COMPILATION, 0.0)
    timeline.leave(0.0)
    timeline.enter(Phase.CALIBRATION, 0.0)
    timeline.leave(2.0)
    timeline.enter(Phase.EXECUTION, 2.0)
    timeline.leave(10.0)
    return timeline


class TestPhaseTimeline:
    def test_sequence_and_durations(self):
        timeline = well_formed_timeline()
        assert timeline.sequence() == [Phase.PROGRAMMING, Phase.COMPILATION,
                                       Phase.CALIBRATION, Phase.EXECUTION]
        assert timeline.total_duration(Phase.CALIBRATION) == pytest.approx(2.0)
        assert timeline.total_duration(Phase.EXECUTION) == pytest.approx(8.0)

    def test_enter_closes_open_phase(self):
        timeline = PhaseTimeline()
        timeline.enter(Phase.PROGRAMMING, 0.0)
        timeline.enter(Phase.COMPILATION, 1.0)
        assert timeline.records[0].phase is Phase.PROGRAMMING
        assert timeline.records[0].end == 1.0
        assert timeline.current is Phase.COMPILATION

    def test_leave_without_open_phase_raises(self):
        with pytest.raises(GraspError):
            PhaseTimeline().leave(1.0)

    def test_leave_before_start_raises(self):
        timeline = PhaseTimeline()
        timeline.enter(Phase.PROGRAMMING, 5.0)
        with pytest.raises(GraspError):
            timeline.leave(1.0)

    def test_visits_and_recalibrations(self):
        timeline = well_formed_timeline()
        assert timeline.visits(Phase.CALIBRATION) == 1
        assert timeline.recalibrations() == 0
        # add a feedback cycle
        timeline.enter(Phase.CALIBRATION, 10.0)
        timeline.leave(11.0)
        timeline.enter(Phase.EXECUTION, 11.0)
        timeline.leave(15.0)
        assert timeline.visits(Phase.CALIBRATION) == 2
        assert timeline.recalibrations() == 1

    def test_as_dict(self):
        durations = well_formed_timeline().as_dict()
        assert set(durations) == {p.value for p in Phase}
        assert durations["execution"] == pytest.approx(8.0)

    def test_validate_accepts_well_formed(self):
        well_formed_timeline().validate()

    def test_validate_rejects_incomplete(self):
        timeline = PhaseTimeline()
        timeline.enter(Phase.PROGRAMMING, 0.0)
        timeline.leave(0.0)
        with pytest.raises(GraspError):
            timeline.validate()

    def test_validate_rejects_wrong_order(self):
        timeline = PhaseTimeline()
        for phase, (start, end) in [
            (Phase.COMPILATION, (0.0, 0.0)),
            (Phase.PROGRAMMING, (0.0, 0.0)),
            (Phase.CALIBRATION, (0.0, 1.0)),
            (Phase.EXECUTION, (1.0, 2.0)),
        ]:
            timeline.enter(phase, start)
            timeline.leave(end)
        with pytest.raises(GraspError):
            timeline.validate()

    def test_validate_rejects_execution_before_calibration(self):
        timeline = PhaseTimeline()
        for phase, (start, end) in [
            (Phase.PROGRAMMING, (0.0, 0.0)),
            (Phase.COMPILATION, (0.0, 0.0)),
            (Phase.EXECUTION, (0.0, 1.0)),
            (Phase.CALIBRATION, (1.0, 2.0)),
        ]:
            timeline.enter(phase, start)
            timeline.leave(end)
        with pytest.raises(GraspError):
            timeline.validate()

    def test_validate_rejects_overlap(self):
        timeline = PhaseTimeline()
        for phase, (start, end) in [
            (Phase.PROGRAMMING, (0.0, 0.0)),
            (Phase.COMPILATION, (0.0, 0.0)),
            (Phase.CALIBRATION, (0.0, 5.0)),
            (Phase.EXECUTION, (3.0, 8.0)),
        ]:
            timeline.enter(phase, start)
            timeline.leave(end)
        with pytest.raises(GraspError):
            timeline.validate()

    def test_record_duration(self):
        timeline = well_formed_timeline()
        assert timeline.records[2].duration == pytest.approx(2.0)
