"""Tests for the in-process (thread-backed) communicator."""

from __future__ import annotations

import pytest

from repro.comm.inproc import run_spmd
from repro.exceptions import CommunicationError


class TestRunSpmd:
    def test_returns_per_rank_results(self):
        results = run_spmd(4, lambda comm: comm.rank * 10)
        assert results == [0, 10, 20, 30]

    def test_single_rank(self):
        assert run_spmd(1, lambda comm: comm.size) == [1]

    def test_invalid_size(self):
        with pytest.raises(CommunicationError):
            run_spmd(0, lambda comm: None)

    def test_exception_propagates_with_rank(self):
        def fn(comm):
            if comm.rank == 2:
                raise ValueError("boom")
            return comm.rank

        with pytest.raises(CommunicationError, match="rank 2"):
            run_spmd(4, fn)


class TestPointToPoint:
    def test_send_recv_pair(self):
        def fn(comm):
            if comm.rank == 0:
                comm.send({"value": 42}, dst=1)
                return None
            return comm.recv(src=0)

        results = run_spmd(2, fn)
        assert results[1] == {"value": 42}

    def test_tagged_messages(self):
        def fn(comm):
            if comm.rank == 0:
                comm.send("low", dst=1, tag=1)
                comm.send("high", dst=1, tag=2)
                return None
            high = comm.recv(src=0, tag=2)
            low = comm.recv(src=0, tag=1)
            return (low, high)

        results = run_spmd(2, fn)
        assert results[1] == ("low", "high")

    def test_invalid_destination(self):
        def fn(comm):
            if comm.rank == 0:
                comm.send("x", dst=99)
            return None

        with pytest.raises(CommunicationError):
            run_spmd(2, fn)


class TestCollectives:
    def test_bcast(self):
        def fn(comm):
            data = {"answer": 42} if comm.rank == 0 else None
            return comm.bcast(data, root=0)

        results = run_spmd(4, fn)
        assert all(r == {"answer": 42} for r in results)

    def test_scatter(self):
        def fn(comm):
            data = [i * i for i in range(comm.size)] if comm.rank == 0 else None
            return comm.scatter(data, root=0)

        assert run_spmd(4, fn) == [0, 1, 4, 9]

    def test_scatter_wrong_length_raises(self):
        def fn(comm):
            data = [1] if comm.rank == 0 else None
            return comm.scatter(data, root=0)

        with pytest.raises(CommunicationError):
            run_spmd(3, fn)

    def test_gather(self):
        def fn(comm):
            return comm.gather(comm.rank + 1, root=0)

        results = run_spmd(3, fn)
        assert results[0] == [1, 2, 3]
        assert results[1] is None and results[2] is None

    def test_allgather(self):
        results = run_spmd(3, lambda comm: comm.allgather(comm.rank))
        assert all(r == [0, 1, 2] for r in results)

    def test_reduce_sum(self):
        def fn(comm):
            return comm.reduce(comm.rank + 1, op=lambda a, b: a + b, root=0)

        results = run_spmd(4, fn)
        assert results[0] == 10
        assert results[1] is None

    def test_barrier_synchronises(self):
        order = []

        def fn(comm):
            order.append(("before", comm.rank))
            comm.barrier()
            order.append(("after", comm.rank))
            return True

        run_spmd(3, fn)
        befores = [i for i, (phase, _) in enumerate(order) if phase == "before"]
        afters = [i for i, (phase, _) in enumerate(order) if phase == "after"]
        assert max(befores) < min(afters)

    def test_pi_estimation_spmd(self):
        """An end-to-end mpi4py-style mini-application over the thread backend."""

        def fn(comm):
            n = 4000
            local = 0.0
            for i in range(comm.rank, n, comm.size):
                x = (i + 0.5) / n
                local += 4.0 / (1.0 + x * x)
            total = comm.reduce(local / n, op=lambda a, b: a + b, root=0)
            return total

        results = run_spmd(4, fn)
        assert results[0] == pytest.approx(3.141592, abs=1e-3)
