"""Property-based tests (hypothesis) on core data structures and invariants."""

from __future__ import annotations


import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.comm.collectives import (
    binomial_tree_rounds,
    broadcast_completion_times,
    gather_completion_time,
    )
from repro.core.calibration import select_fittest
from repro.core.parameters import CalibrationConfig, SelectionPolicy
from repro.core.ranking import NodeScore, RankingMode, rank_nodes
from repro.core.scheduler import (StaticBlockScheduler, StaticCyclicScheduler,
                                  WeightedBlockScheduler)
from repro.grid.load import BurstyLoad, RandomWalkLoad, SinusoidalLoad
from repro.grid.node import GridNode
from repro.grid.simulator import GridSimulator
from repro.grid.topology import GridTopology
from repro.monitor.thresholds import RelativeThreshold
from repro.skeletons.base import Task
from repro.utils.stats import normalise, summarise, univariate_linear_regression
from repro.utils.rng import derive_seed

finite_floats = st.floats(min_value=0.001, max_value=1e6, allow_nan=False,
                          allow_infinity=False)


class TestStatsProperties:
    @given(st.lists(finite_floats, min_size=1, max_size=50))
    def test_summary_bounds(self, values):
        s = summarise(values)
        assert s.minimum <= s.mean <= s.maximum
        assert s.minimum <= s.median <= s.maximum
        assert s.count == len(values)

    @given(st.lists(finite_floats, min_size=1, max_size=50))
    def test_normalise_range(self, values):
        out = normalise(values)
        assert np.all(out >= 0.0) and np.all(out <= 1.0)

    @given(st.floats(min_value=-100, max_value=100),
           st.floats(min_value=-10, max_value=10),
           st.lists(st.floats(min_value=-50, max_value=50), min_size=3, max_size=30,
                    unique=True))
    def test_regression_recovers_noiseless_line(self, intercept, slope, xs):
        ys = [intercept + slope * x for x in xs]
        fit = univariate_linear_regression(xs, ys)
        for x, y in zip(xs, ys):
            assert fit.predict(x) == pytest.approx(y, abs=1e-6 + 1e-6 * abs(y))


class TestRngProperties:
    @given(st.integers(min_value=0, max_value=2**31), st.text(min_size=0, max_size=20))
    def test_derive_seed_range(self, seed, name):
        value = derive_seed(seed, name)
        assert 0 <= value < 2 ** 63


class TestLoadModelProperties:
    @given(st.integers(min_value=0, max_value=1000),
           st.floats(min_value=0.0, max_value=5000.0, allow_nan=False))
    def test_randomwalk_bounded_and_deterministic(self, seed, time):
        a = RandomWalkLoad(seed=seed, name="p")
        b = RandomWalkLoad(seed=seed, name="p")
        u = a.utilisation(time)
        assert 0.0 <= u <= 0.98
        assert u == b.utilisation(time)

    @given(st.integers(min_value=0, max_value=1000),
           st.floats(min_value=0.0, max_value=5000.0, allow_nan=False))
    def test_bursty_two_levels(self, seed, time):
        model = BurstyLoad(seed=seed, quiet_level=0.1, busy_level=0.8)
        assert model.utilisation(time) in (pytest.approx(0.1), pytest.approx(0.8))

    @given(st.floats(min_value=0.0, max_value=1e4, allow_nan=False))
    def test_sinusoidal_bounded(self, time):
        model = SinusoidalLoad(base=0.5, amplitude=0.6, period=37.0)
        assert 0.0 <= model.utilisation(time) <= 0.98


class TestSimulatorProperties:
    @given(st.lists(st.floats(min_value=0.1, max_value=100.0), min_size=1, max_size=20),
           st.floats(min_value=0.5, max_value=8.0))
    @settings(suppress_health_check=[HealthCheck.too_slow], deadline=None)
    def test_serial_node_durations_sum(self, costs, speed):
        """Tasks on a single-core node execute back to back: the completion
        time of the last task equals the sum of the durations."""
        topo = GridTopology(nodes=[GridNode(node_id="n", speed=speed)])
        sim = GridSimulator(topo)
        records = [sim.run_task("n", c, at_time=0.0) for c in costs]
        assert records[-1].finished == pytest.approx(sum(c / speed for c in costs))
        for earlier, later in zip(records, records[1:]):
            assert later.started == pytest.approx(earlier.finished)

    @given(st.integers(min_value=1, max_value=64))
    def test_binomial_tree_covers_all_ranks(self, size):
        covered = {0}
        for pairs in binomial_tree_rounds(size):
            for src, dst in pairs:
                assert src in covered
                covered.add(dst)
        assert covered == set(range(size))

    @given(st.integers(min_value=1, max_value=32),
           st.floats(min_value=0.0, max_value=100.0))
    def test_broadcast_times_never_before_start(self, size, start):
        times = broadcast_completion_times(size, 10.0, start,
                                           lambda s, d, n, t: 0.5)
        assert all(t >= start for t in times.values())
        assert len(times) == size

    @given(st.lists(st.floats(min_value=0.0, max_value=50.0), min_size=1, max_size=16))
    def test_gather_completes_after_every_ready_time(self, ready):
        size = len(ready)
        finish = gather_completion_time(size, [1.0] * size, ready,
                                        lambda s, d, n, t: 0.25)
        assert finish >= max(ready)


class TestSchedulerProperties:
    tasks_strategy = st.integers(min_value=1, max_value=200)
    nodes_strategy = st.integers(min_value=1, max_value=12)

    @given(tasks_strategy, nodes_strategy)
    def test_block_assignment_partitions_tasks(self, n_tasks, n_nodes):
        tasks = [Task(task_id=i, payload=i) for i in range(n_tasks)]
        nodes = [f"n{i}" for i in range(n_nodes)]
        assignment = StaticBlockScheduler().assign(tasks, nodes)
        ids = sorted(t.task_id for ts in assignment.values() for t in ts)
        assert ids == list(range(n_tasks))

    @given(tasks_strategy, nodes_strategy)
    def test_cyclic_assignment_partitions_tasks(self, n_tasks, n_nodes):
        tasks = [Task(task_id=i, payload=i) for i in range(n_tasks)]
        nodes = [f"n{i}" for i in range(n_nodes)]
        assignment = StaticCyclicScheduler().assign(tasks, nodes)
        ids = sorted(t.task_id for ts in assignment.values() for t in ts)
        assert ids == list(range(n_tasks))
        counts = [len(assignment[n]) for n in nodes]
        assert max(counts) - min(counts) <= 1

    @given(tasks_strategy, st.lists(st.floats(min_value=0.1, max_value=10.0),
                                    min_size=1, max_size=8))
    def test_weighted_assignment_partitions_tasks(self, n_tasks, weights):
        tasks = [Task(task_id=i, payload=i) for i in range(n_tasks)]
        nodes = [f"n{i}" for i in range(len(weights))]
        scheduler = WeightedBlockScheduler(weights=dict(zip(nodes, weights)))
        assignment = scheduler.assign(tasks, nodes)
        ids = sorted(t.task_id for ts in assignment.values() for t in ts)
        assert ids == list(range(n_tasks))


class TestRankingProperties:
    @given(st.dictionaries(
        keys=st.text(alphabet="abcdefgh", min_size=1, max_size=3),
        values=st.lists(st.floats(min_value=0.01, max_value=100.0), min_size=1, max_size=5),
        min_size=1, max_size=8,
    ))
    def test_time_only_ranking_sorted_and_complete(self, times):
        ranked = rank_nodes(times, mode=RankingMode.TIME_ONLY)
        assert {s.node_id for s in ranked} == set(times)
        scores = [s.score for s in ranked]
        assert scores == sorted(scores)

    @given(st.lists(st.floats(min_value=0.01, max_value=100.0), min_size=1, max_size=12),
           st.integers(min_value=1, max_value=12))
    def test_selection_respects_floor_and_pool(self, scores, floor):
        score_objs = [NodeScore(node_id=f"n{i}", score=s, mean_time=s, mean_load=0,
                                mean_bandwidth=0, observations=1)
                      for i, s in enumerate(scores)]
        config = CalibrationConfig(selection=SelectionPolicy.CUTOFF, cutoff_ratio=2.0)
        chosen = select_fittest(score_objs, config, min_nodes=floor)
        assert 1 <= len(chosen) <= len(scores)
        assert len(chosen) >= min(floor, len(scores))
        assert len(set(chosen)) == len(chosen)


class TestThresholdProperties:
    @given(st.lists(st.floats(min_value=0.01, max_value=10.0), min_size=1, max_size=20),
           st.floats(min_value=1.0, max_value=5.0))
    def test_scaled_round_breaches_iff_above_factor(self, sample, factor):
        threshold = RelativeThreshold(factor=factor)
        threshold.calibrate(sample)
        reference = float(np.median(sample))
        round_times = [reference * factor * 1.5] * 3
        assert threshold.breached(round_times)
        ok_times = [reference * factor * 0.5] * 3
        assert not threshold.breached(ok_times)
