"""Tests for the simulated (cost-accounting) communicator."""

from __future__ import annotations

import pytest

from repro.comm.communicator import SimulatedCommunicator
from repro.exceptions import CommunicationError
from repro.grid.node import GridNode
from repro.grid.simulator import GridSimulator
from repro.grid.topology import GridTopology


@pytest.fixture
def comm() -> SimulatedCommunicator:
    topo = GridTopology(
        nodes=[GridNode(node_id=f"n{i}", speed=1.0) for i in range(4)],
        wan_latency=0.01, wan_bandwidth=1e6,
    )
    sim = GridSimulator(topo)
    return SimulatedCommunicator(sim, topo.node_ids)


class TestConstruction:
    def test_size_and_rank_mapping(self, comm):
        assert comm.size == 4
        assert comm.node_of(2) == "n2"
        assert comm.rank_of("n3") == 3

    def test_unknown_node_rank_rejected(self, comm):
        with pytest.raises(CommunicationError):
            comm.rank_of("ghost")

    def test_rank_out_of_range(self, comm):
        with pytest.raises(CommunicationError):
            comm.node_of(9)

    def test_duplicate_nodes_rejected(self):
        topo = GridTopology(nodes=[GridNode(node_id="x")])
        sim = GridSimulator(topo)
        with pytest.raises(CommunicationError):
            SimulatedCommunicator(sim, ["x", "x"])

    def test_node_not_in_topology_rejected(self):
        topo = GridTopology(nodes=[GridNode(node_id="x")])
        sim = GridSimulator(topo)
        with pytest.raises(CommunicationError):
            SimulatedCommunicator(sim, ["x", "ghost"])

    def test_empty_communicator_rejected(self):
        topo = GridTopology(nodes=[GridNode(node_id="x")])
        sim = GridSimulator(topo)
        with pytest.raises(CommunicationError):
            SimulatedCommunicator(sim, [])


class TestPointToPoint:
    def test_send_charges_link_time(self, comm):
        message = comm.send(0, 1, payload=b"x" * 10_000, at_time=0.0)
        assert message.delivered_at > message.sent_at
        assert message.delivered_at == pytest.approx(0.01 + (10_000 + 64) / 1e6)

    def test_send_records_message(self, comm):
        comm.send(0, 1, payload="hello", at_time=0.0)
        assert len(comm.messages) == 1
        assert comm.total_bytes() > 0

    def test_explicit_nbytes(self, comm):
        message = comm.send(0, 1, payload=None, at_time=0.0, nbytes=2_000_000)
        assert message.nbytes == 2_000_000
        assert message.delivered_at == pytest.approx(0.01 + 2.0)

    def test_transfer_time_probe_does_not_record(self, comm):
        duration = comm.transfer_time(0, 1, 1e6, 0.0)
        assert duration == pytest.approx(0.01 + 1.0)
        assert len(comm.messages) == 0

    def test_invalid_ranks(self, comm):
        with pytest.raises(CommunicationError):
            comm.send(0, 9, payload=None, at_time=0.0)


class TestCollectives:
    def test_broadcast_returns_all_ranks(self, comm):
        times = comm.broadcast(0, payload=b"x" * 1000, at_time=0.0)
        assert set(times) == {0, 1, 2, 3}
        assert times[0] == 0.0
        assert all(t >= 0.0 for t in times.values())

    def test_broadcast_records_messages(self, comm):
        comm.broadcast(0, payload="hello", at_time=0.0)
        assert len(comm.messages) == 3

    def test_scatter(self, comm):
        payloads = [f"chunk{i}" for i in range(4)]
        times = comm.scatter(0, payloads, at_time=1.0)
        assert times[0] == 1.0
        assert all(times[r] > 1.0 for r in range(1, 4))

    def test_scatter_wrong_count(self, comm):
        with pytest.raises(CommunicationError):
            comm.scatter(0, ["only-one"], at_time=0.0)

    def test_gather(self, comm):
        finish = comm.gather(0, ready_times=[0.0, 1.0, 2.0, 3.0],
                             payloads=["a", "b", "c", "d"])
        assert finish >= 3.0

    def test_gather_wrong_lengths(self, comm):
        with pytest.raises(CommunicationError):
            comm.gather(0, ready_times=[0.0], payloads=["a", "b", "c", "d"])

    def test_barrier_releases_after_slowest(self, comm):
        release = comm.barrier([0.0, 5.0, 1.0, 2.0])
        assert release >= 5.0

    def test_barrier_wrong_length(self, comm):
        with pytest.raises(CommunicationError):
            comm.barrier([0.0, 1.0])


class TestSubCommunicator:
    def test_subset_mapping(self, comm):
        sub = comm.sub_communicator([2, 0])
        assert sub.size == 2
        assert sub.node_of(0) == "n2"
        assert sub.node_of(1) == "n0"

    def test_empty_subset_rejected(self, comm):
        with pytest.raises(CommunicationError):
            comm.sub_communicator([])

    def test_invalid_rank_rejected(self, comm):
        with pytest.raises(CommunicationError):
            comm.sub_communicator([7])
