"""Tests for the virtual-time grid simulator."""

from __future__ import annotations

import pytest

from repro.exceptions import GridError
from repro.grid.failures import PermanentFailure
from repro.grid.load import ConstantLoad, StepLoad
from repro.grid.node import GridNode
from repro.grid.simulator import GridSimulator
from repro.grid.topology import GridBuilder, GridTopology
from repro.utils.tracing import Tracer


def simple_topology() -> GridTopology:
    return GridTopology(nodes=[
        GridNode(node_id="fast", speed=4.0),
        GridNode(node_id="slow", speed=1.0),
        GridNode(node_id="busy", speed=4.0, load_model=ConstantLoad(0.5)),
        GridNode(node_id="dual", speed=2.0, cores=2),
    ], wan_latency=0.01, wan_bandwidth=1e6)


class TestRunTask:
    def test_duration_reflects_speed(self):
        sim = GridSimulator(simple_topology())
        fast = sim.run_task("fast", 8.0)
        slow = sim.run_task("slow", 8.0)
        assert fast.duration == pytest.approx(2.0)
        assert slow.duration == pytest.approx(8.0)

    def test_duration_reflects_external_load(self):
        sim = GridSimulator(simple_topology())
        busy = sim.run_task("busy", 8.0)
        assert busy.duration == pytest.approx(4.0)

    def test_tasks_on_same_node_serialise(self):
        sim = GridSimulator(simple_topology())
        first = sim.run_task("slow", 2.0, at_time=0.0)
        second = sim.run_task("slow", 2.0, at_time=0.0)
        assert second.started == pytest.approx(first.finished)
        assert second.elapsed > second.duration

    def test_multicore_node_runs_in_parallel(self):
        sim = GridSimulator(simple_topology())
        first = sim.run_task("dual", 2.0, at_time=0.0)
        second = sim.run_task("dual", 2.0, at_time=0.0)
        assert first.started == second.started == 0.0
        assert first.core != second.core

    def test_submission_time_respected(self):
        sim = GridSimulator(simple_topology())
        record = sim.run_task("fast", 4.0, at_time=10.0)
        assert record.started == pytest.approx(10.0)
        assert record.submitted == pytest.approx(10.0)

    def test_zero_cost_task(self):
        sim = GridSimulator(simple_topology())
        record = sim.run_task("fast", 0.0)
        assert record.duration == 0.0

    def test_negative_cost_rejected(self):
        sim = GridSimulator(simple_topology())
        with pytest.raises(GridError):
            sim.run_task("fast", -1.0)

    def test_unknown_node_rejected(self):
        sim = GridSimulator(simple_topology())
        with pytest.raises(GridError):
            sim.run_task("ghost", 1.0)

    def test_unavailable_node_rejected(self):
        topo = simple_topology().with_failure_model(
            PermanentFailure(failures={"fast": 5.0})
        )
        sim = GridSimulator(topo)
        sim.run_task("fast", 1.0, at_time=0.0)
        with pytest.raises(GridError):
            sim.run_task("fast", 1.0, at_time=6.0)

    def test_load_sampled_at_start(self):
        topo = GridTopology(nodes=[
            GridNode(node_id="n", speed=1.0,
                     load_model=StepLoad(steps=[(10.0, 0.5)], initial=0.0)),
        ])
        sim = GridSimulator(topo)
        before = sim.run_task("n", 1.0, at_time=0.0)
        after = sim.run_task("n", 1.0, at_time=20.0)
        assert before.duration == pytest.approx(1.0)
        assert after.duration == pytest.approx(2.0)


class TestTransfer:
    def test_transfer_time_uses_link(self):
        sim = GridSimulator(simple_topology())
        record = sim.transfer("fast", "slow", 1e6, at_time=0.0)
        assert record.duration == pytest.approx(0.01 + 1.0)

    def test_loopback_transfer_is_free(self):
        sim = GridSimulator(simple_topology())
        record = sim.transfer("fast", "fast", 1e9)
        assert record.duration < 1e-3

    def test_negative_bytes_rejected(self):
        sim = GridSimulator(simple_topology())
        with pytest.raises(GridError):
            sim.transfer("fast", "slow", -1.0)


class TestBookkeeping:
    def test_node_free_at_tracks_backlog(self):
        sim = GridSimulator(simple_topology())
        assert sim.node_free_at("slow") == 0.0
        record = sim.run_task("slow", 3.0)
        assert sim.node_free_at("slow") == pytest.approx(record.finished)

    def test_node_free_at_multicore_returns_earliest(self):
        sim = GridSimulator(simple_topology())
        sim.run_task("dual", 4.0, at_time=0.0)
        assert sim.node_free_at("dual") == 0.0

    def test_reset_queues(self):
        sim = GridSimulator(simple_topology())
        sim.run_task("slow", 3.0)
        sim.reset_queues(time=0.0)
        assert sim.node_free_at("slow") == 0.0

    def test_unknown_node_free_at(self):
        sim = GridSimulator(simple_topology())
        with pytest.raises(GridError):
            sim.node_free_at("ghost")

    def test_history_and_makespan(self):
        sim = GridSimulator(simple_topology())
        sim.run_task("fast", 4.0)
        sim.transfer("fast", "slow", 1000.0, at_time=0.0)
        assert len(sim.executions) == 1
        assert len(sim.transfers) == 1
        assert sim.total_work() == pytest.approx(4.0)
        assert sim.makespan() > 0.0

    def test_busy_time_per_node(self):
        sim = GridSimulator(simple_topology())
        sim.run_task("fast", 4.0)
        sim.run_task("fast", 4.0)
        assert sim.busy_time("fast") == pytest.approx(2.0)
        assert sim.busy_time("slow") == 0.0

    def test_advance_to_never_goes_backwards(self):
        sim = GridSimulator(simple_topology())
        sim.advance_to(10.0)
        sim.advance_to(5.0)
        assert sim.now == 10.0

    def test_tracer_records_tasks(self):
        tracer = Tracer()
        sim = GridSimulator(simple_topology(), tracer=tracer)
        sim.run_task("fast", 1.0)
        sim.transfer("fast", "slow", 10.0)
        assert len(tracer.filter("simulator.task")) == 1
        assert len(tracer.filter("simulator.transfer")) == 1


class TestObservation:
    def test_observe_load(self):
        sim = GridSimulator(simple_topology())
        assert sim.observe_load("busy") == pytest.approx(0.5)
        assert sim.observe_load("fast") == 0.0

    def test_observe_bandwidth(self):
        sim = GridSimulator(simple_topology())
        assert sim.observe_bandwidth("fast", "slow") == pytest.approx(1e6)

    def test_is_available(self):
        topo = simple_topology().with_failure_model(
            PermanentFailure(failures={"fast": 5.0})
        )
        sim = GridSimulator(topo)
        assert sim.is_available("fast", 0.0)
        assert not sim.is_available("fast", 6.0)
        with pytest.raises(GridError):
            sim.is_available("ghost", 0.0)


class TestEventQueueIntegration:
    def test_builder_grid_runs_tasks(self):
        grid = GridBuilder().heterogeneous(nodes=4, speed_spread=4.0).build(seed=0)
        sim = GridSimulator(grid)
        records = [sim.run_task(node_id, 10.0) for node_id in grid.node_ids]
        durations = [r.duration for r in records]
        assert max(durations) / min(durations) == pytest.approx(4.0, rel=1e-6)
