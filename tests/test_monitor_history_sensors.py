"""Tests for observation history and resource sensors."""

from __future__ import annotations

import math

import pytest

from repro.exceptions import ConfigurationError
from repro.grid.load import ConstantLoad, StepLoad
from repro.grid.node import GridNode
from repro.grid.simulator import GridSimulator
from repro.grid.topology import GridTopology
from repro.monitor.history import TimeSeries
from repro.monitor.monitor import ResourceMonitor
from repro.monitor.sensors import BandwidthSensor, CpuLoadSensor


@pytest.fixture
def loaded_sim() -> GridSimulator:
    topo = GridTopology(nodes=[
        GridNode(node_id="idle", speed=1.0),
        GridNode(node_id="halved", speed=1.0, load_model=ConstantLoad(0.5)),
        GridNode(node_id="stepped", speed=1.0,
                 load_model=StepLoad(steps=[(10.0, 0.8)], initial=0.1)),
    ], wan_bandwidth=1e6, wan_latency=0.001)
    return GridSimulator(topo)


class TestTimeSeries:
    def test_append_and_values(self):
        series = TimeSeries()
        series.append(0.0, 1.0)
        series.append(1.0, 2.0)
        assert series.values() == [1.0, 2.0]
        assert series.times() == [0.0, 1.0]
        assert len(series) == 2

    def test_last(self):
        series = TimeSeries()
        assert series.last is None
        series.append(3.0, 9.0)
        assert series.last.value == 9.0

    def test_window(self):
        series = TimeSeries()
        for i in range(10):
            series.append(i, float(i))
        assert series.values(window=3) == [7.0, 8.0, 9.0]
        assert series.times(window=2) == [8.0, 9.0]

    def test_invalid_window(self):
        series = TimeSeries()
        series.append(0, 0)
        with pytest.raises(ConfigurationError):
            series.values(window=0)

    def test_capacity_bounds_history(self):
        series = TimeSeries(capacity=5)
        for i in range(20):
            series.append(i, float(i))
        assert len(series) == 5
        assert series.values() == [15.0, 16.0, 17.0, 18.0, 19.0]

    def test_invalid_capacity(self):
        with pytest.raises(ConfigurationError):
            TimeSeries(capacity=0)

    def test_since(self):
        series = TimeSeries()
        for i in range(5):
            series.append(i, float(i))
        assert [o.value for o in series.since(3.0)] == [3.0, 4.0]

    def test_mean_and_std(self):
        series = TimeSeries()
        assert math.isnan(series.mean())
        for v in (1.0, 2.0, 3.0):
            series.append(0.0, v)
        assert series.mean() == pytest.approx(2.0)
        assert series.std() == pytest.approx(0.816496, abs=1e-5)

    def test_bool(self):
        series = TimeSeries()
        assert not series
        series.append(0, 0)
        assert series


class TestSensors:
    def test_cpu_sensor_reads_simulator(self, loaded_sim):
        sensor = CpuLoadSensor(loaded_sim, "halved")
        assert sensor.read(0.0) == pytest.approx(0.5)
        assert sensor.last_value == pytest.approx(0.5)
        assert len(sensor.history) == 1

    def test_cpu_sensor_tracks_time_variation(self, loaded_sim):
        sensor = CpuLoadSensor(loaded_sim, "stepped")
        assert sensor.read(0.0) == pytest.approx(0.1)
        assert sensor.read(20.0) == pytest.approx(0.8)
        assert sensor.history.values() == [pytest.approx(0.1), pytest.approx(0.8)]

    def test_bandwidth_sensor(self, loaded_sim):
        sensor = BandwidthSensor(loaded_sim, "idle", "halved")
        assert sensor.read(0.0) == pytest.approx(1e6)

    def test_unknown_node_rejected(self, loaded_sim):
        with pytest.raises(ConfigurationError):
            CpuLoadSensor(loaded_sim, "ghost")
        with pytest.raises(ConfigurationError):
            BandwidthSensor(loaded_sim, "idle", "ghost")

    def test_last_value_none_before_first_poll(self, loaded_sim):
        sensor = CpuLoadSensor(loaded_sim, "idle")
        assert sensor.last_value is None


class TestResourceMonitor:
    def test_poll_all_nodes(self, loaded_sim):
        monitor = ResourceMonitor(loaded_sim, ["idle", "halved", "stepped"],
                                  master_node="idle")
        snapshots = monitor.poll(0.0)
        assert set(snapshots) == {"idle", "halved", "stepped"}
        assert snapshots["halved"].cpu_load == pytest.approx(0.5)
        assert snapshots["idle"].bandwidth_to_master > 0

    def test_snapshot_single_node(self, loaded_sim):
        monitor = ResourceMonitor(loaded_sim, ["idle", "stepped"], master_node="idle")
        snap = monitor.snapshot("stepped", time=20.0)
        assert snap.cpu_load == pytest.approx(0.8)
        assert snap.node_id == "stepped"

    def test_forecast_after_polls(self, loaded_sim):
        monitor = ResourceMonitor(loaded_sim, ["halved"], master_node="halved")
        for t in (0.0, 1.0, 2.0):
            monitor.poll(t)
        assert monitor.forecast_load("halved") == pytest.approx(0.5)
        assert monitor.forecast_all()["halved"] == pytest.approx(0.5)

    def test_forecast_without_observations_is_nan(self, loaded_sim):
        monitor = ResourceMonitor(loaded_sim, ["idle"], master_node="idle")
        assert math.isnan(monitor.forecast_load("idle"))

    def test_histories(self, loaded_sim):
        monitor = ResourceMonitor(loaded_sim, ["idle", "halved"], master_node="idle")
        monitor.poll(0.0)
        monitor.poll(5.0)
        assert len(monitor.load_history("halved")) == 2
        assert len(monitor.bandwidth_history("halved")) == 2

    def test_unknown_node_rejected(self, loaded_sim):
        monitor = ResourceMonitor(loaded_sim, ["idle"], master_node="idle")
        with pytest.raises(ConfigurationError):
            monitor.forecast_load("ghost")
        with pytest.raises(ConfigurationError):
            monitor.snapshot("ghost")
        with pytest.raises(ConfigurationError):
            monitor.load_history("ghost")

    def test_empty_node_list_rejected(self, loaded_sim):
        with pytest.raises(ConfigurationError):
            ResourceMonitor(loaded_sim, [])
