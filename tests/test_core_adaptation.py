"""Tests for the adaptation decision logic."""

from __future__ import annotations

import pytest

from repro.core.adaptation import decide, rerank_from_history
from repro.core.parameters import AdaptationAction, CalibrationConfig, SelectionPolicy
from repro.exceptions import ExecutionError


class TestDecide:
    def test_no_breach_means_no_action(self):
        decision = decide(False, AdaptationAction.RECALIBRATE, 0, 10)
        assert decision.action is AdaptationAction.NONE

    def test_breach_triggers_configured_action(self):
        decision = decide(True, AdaptationAction.RECALIBRATE, 0, 10)
        assert decision.action is AdaptationAction.RECALIBRATE
        decision = decide(True, AdaptationAction.RERANK, 0, 10)
        assert decision.action is AdaptationAction.RERANK

    def test_disabled_adaptation_never_acts(self):
        decision = decide(True, AdaptationAction.NONE, 0, 10)
        assert decision.action is AdaptationAction.NONE
        assert "disabled" in decision.reason

    def test_budget_exhaustion_blocks_action(self):
        decision = decide(True, AdaptationAction.RECALIBRATE, 5, 5)
        assert decision.action is AdaptationAction.NONE
        assert "budget" in decision.reason

    def test_budget_not_exhausted(self):
        decision = decide(True, AdaptationAction.RECALIBRATE, 4, 5)
        assert decision.action is AdaptationAction.RECALIBRATE


class TestRerankFromHistory:
    def test_reranks_by_observed_times(self):
        chosen = rerank_from_history(
            unit_times_by_node={"fast": [1.0, 1.1], "slow": [3.0, 3.2]},
            loads_by_node=None,
            calibration_config=CalibrationConfig(
                selection=SelectionPolicy.COUNT, select_count=1
            ),
            min_nodes=1,
            pool=["fast", "slow"],
        )
        assert chosen == ["fast"]

    def test_unobserved_pool_nodes_rank_last_but_survive_floor(self):
        chosen = rerank_from_history(
            unit_times_by_node={"a": [1.0], "b": [2.0]},
            loads_by_node=None,
            calibration_config=CalibrationConfig(
                selection=SelectionPolicy.COUNT, select_count=3
            ),
            min_nodes=3,
            pool=["a", "b", "unseen"],
        )
        assert chosen[:2] == ["a", "b"]
        assert "unseen" in chosen

    def test_empty_history_rejected(self):
        with pytest.raises(ExecutionError):
            rerank_from_history({}, None, CalibrationConfig(), 1, ["a"])

    def test_nodes_with_empty_observations_ignored(self):
        chosen = rerank_from_history(
            unit_times_by_node={"a": [1.0], "b": []},
            loads_by_node={"a": [0.1]},
            calibration_config=CalibrationConfig(),
            min_nodes=1,
            pool=["a", "b"],
        )
        assert chosen[0] == "a"
