"""Lock-order sanitizer tests.

The central scenario: thread 1 takes A then B, thread 2 takes B then A.
No deadlock occurs in the test (acquisitions are sequenced), but the
sanitizer must flag the inversion anyway — that is the whole point of
order-graph analysis over "run it and hope".
"""

from __future__ import annotations

import threading

import pytest

from repro.exceptions import LockOrderError
from repro.sanitizers import locks as locks_mod
from repro.sanitizers.locks import InstrumentedLock, LockOrderGraph


def run_in_thread(fn):
    worker = threading.Thread(target=fn, name="grasp-test-locker", daemon=True)
    worker.start()
    worker.join(5)
    assert not worker.is_alive()


@pytest.fixture
def graph():
    return LockOrderGraph()


def make_pair(graph):
    return (
        InstrumentedLock("A", graph=graph),
        InstrumentedLock("B", graph=graph),
    )


def test_seeded_inversion_is_detected(graph):
    a, b = make_pair(graph)

    with a:
        with b:
            pass

    def inverted():
        with b:
            with a:
                pass

    run_in_thread(inverted)
    found = graph.violations()
    assert len(found) == 1
    violation = found[0]
    assert violation.first_order == ("A", "B")
    assert violation.second_order == ("B", "A")
    assert set(violation.cycle) == {"A", "B"}
    # Both witness stacks point at real acquisition sites in this file.
    assert "test_sanitizer_locks" in violation.first_stack
    assert "inverted" in violation.second_stack
    with pytest.raises(LockOrderError) as excinfo:
        graph.assert_clean()
    assert "A -> B" in str(excinfo.value)


def test_consistent_order_is_quiet(graph):
    a, b = make_pair(graph)

    with a:
        with b:
            pass

    def same_order_again():
        with a:
            with b:
                pass

    run_in_thread(same_order_again)
    assert graph.violations() == []
    graph.assert_clean()


def test_three_lock_cycle_through_intermediate(graph):
    a, b = make_pair(graph)
    c = InstrumentedLock("C", graph=graph)

    with a:
        with b:
            pass
    with b:
        with c:
            pass

    def closes_cycle():
        with c:
            with a:
                pass

    run_in_thread(closes_cycle)
    found = graph.violations()
    assert len(found) == 1
    assert found[0].cycle[0] == "A"
    assert found[0].cycle[-1] == "A" or found[0].second_order == ("C", "A")


def test_same_named_locks_do_not_self_edge(graph):
    # Two per-worker send locks share the graph node; nesting them must
    # not record an A->A edge (broadcast loops legitimately do this).
    first = InstrumentedLock("worker-send", graph=graph)
    second = InstrumentedLock("worker-send", graph=graph)
    with first:
        with second:
            pass
    assert graph.edges() == {}
    assert graph.violations() == []


def test_nonblocking_probe_failure_records_nothing(graph):
    # threading.Condition probes ownership via acquire(False); a failed
    # probe must not pollute the order graph.
    a, b = make_pair(graph)
    with a:
        held = b.acquire(blocking=False)
        assert held
        b.release()

    # The edge A->B exists; a *successful* B-then-A acquisition would be
    # the inversion.  Hold A so the probe fails, and verify the failed
    # probe records no B->A edge.
    a.acquire()
    outcome = {}

    def failing_probe():
        with b:
            outcome["got"] = a.acquire(blocking=False)

    run_in_thread(failing_probe)
    a.release()
    assert outcome["got"] is False
    assert graph.violations() == []


def test_release_out_of_order_keeps_stack_consistent(graph):
    a, b = make_pair(graph)
    a.acquire()
    b.acquire()
    a.release()    # hand-over-hand: release outer first
    c = InstrumentedLock("C", graph=graph)
    c.acquire()    # held: B -> records B->C only
    c.release()
    b.release()
    assert set(graph.edges()) == {("A", "B"), ("B", "C")}


def test_reset_clears_edges_and_violations(graph):
    a, b = make_pair(graph)
    with a:
        with b:
            pass

    def inverted():
        with b:
            with a:
                pass

    run_in_thread(inverted)
    assert graph.violations()
    graph.reset()
    assert graph.violations() == []
    assert graph.edges() == {}
    graph.assert_clean()


def test_condition_works_over_instrumented_lock(graph):
    lock = InstrumentedLock("cond-lock", graph=graph)
    cond = threading.Condition(lock)
    ready = []

    def waiter():
        with cond:
            while not ready:
                cond.wait(timeout=5)

    worker = threading.Thread(target=waiter, name="grasp-test-cond", daemon=True)
    worker.start()
    with cond:
        ready.append(True)
        cond.notify()
    worker.join(5)
    assert not worker.is_alive()
    assert graph.violations() == []


def test_make_lock_plain_when_disabled(monkeypatch):
    monkeypatch.delenv("GRASP_SANITIZE", raising=False)
    locks_mod.disable()
    lock = locks_mod.make_lock("x")
    assert not isinstance(lock, InstrumentedLock)


def test_make_lock_instrumented_via_env(monkeypatch):
    monkeypatch.setenv("GRASP_SANITIZE", "locks")
    assert locks_mod.enabled()
    lock = locks_mod.make_lock("x")
    assert isinstance(lock, InstrumentedLock)


def test_make_lock_instrumented_via_enable(monkeypatch):
    monkeypatch.delenv("GRASP_SANITIZE", raising=False)
    locks_mod.enable()
    try:
        assert locks_mod.enabled()
        assert isinstance(locks_mod.make_lock("x"), InstrumentedLock)
    finally:
        locks_mod.disable()


def test_env_list_parsing(monkeypatch):
    monkeypatch.setenv("GRASP_SANITIZE", "asan, locks ,tsan")
    assert locks_mod.enabled()
    monkeypatch.setenv("GRASP_SANITIZE", "asan,tsan")
    locks_mod.disable()
    assert not locks_mod.enabled()


def _triple(task):
    return task.payload * 3


def test_instrumented_cluster_roundtrip_is_clean(lock_sanitizer):
    """Acceptance: a real cluster dispatch under instrumentation is quiet."""
    from repro.cluster.backend import ClusterBackend
    from repro.skeletons.base import Task

    backend = ClusterBackend.local(workers=2)
    try:
        nodes = backend.available_nodes(0.0)
        assert nodes
        outcomes = [
            backend.dispatch(
                Task(task_id=i, payload=i), node, _triple,
                master_node=nodes[0], at_time=backend.now,
            ).outcome()
            for i, node in enumerate(nodes)
        ]
        assert [o.output for o in outcomes] == [i * 3 for i in range(len(nodes))]
    finally:
        backend.close()
    lock_sanitizer.assert_clean()
