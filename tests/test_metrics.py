"""The metrics subsystem: registry semantics, run wiring, and the CLI.

Covers the :class:`~repro.metrics.MetricsRegistry` instrument contracts
(monotonic counters, two-way gauges, histogram percentiles, the
cardinality guard), snapshot shape, the ``GraspResult.metrics`` /
``StreamingRun.metrics()`` surfaces, the ``GRASP_METRICS`` dump, and the
``python -m repro.metrics`` CLI (snapshot rendering and the live STATUS
probe).
"""

from __future__ import annotations

import json

import pytest

from repro import Grasp, GraspConfig, GridBuilder, TaskFarm
from repro.cluster import ClusterCoordinator
from repro.metrics import (
    DEFAULT_MAX_SERIES,
    MetricsRegistry,
    format_series_key,
)
from repro.metrics.cli import MetricsCliError, load_snapshot, main


def _worker(x):
    return x * 2


def _grid():
    return GridBuilder().heterogeneous(nodes=4, speed_spread=4.0).build(seed=3)


class TestCounter:
    def test_counts_up(self):
        registry = MetricsRegistry()
        counter = registry.counter("tasks.completed")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5.0

    def test_negative_increment_raises(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("tasks.completed").inc(-1)

    def test_label_sets_are_distinct_series(self):
        registry = MetricsRegistry()
        registry.counter("dispatch.issued", node="n0").inc(2)
        registry.counter("dispatch.issued", node="n1").inc(3)
        assert registry.counter("dispatch.issued", node="n0").value == 2.0
        assert registry.total("dispatch.issued") == 5.0


class TestGauge:
    def test_set_inc_dec(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("dispatch.in_flight")
        gauge.set(5)
        gauge.inc(2)
        gauge.dec(6)
        assert gauge.value == 1.0

    def test_gauge_fn_evaluated_at_snapshot(self):
        registry = MetricsRegistry()
        level = {"value": 1}
        registry.gauge_fn("cluster.live_workers",
                          lambda: level["value"])
        level["value"] = 7
        (entry,) = registry.snapshot()["series"]
        assert entry["value"] == 7.0

    def test_gauge_fn_replaces_callback(self):
        registry = MetricsRegistry()
        registry.gauge_fn("cluster.pending", lambda: 1)
        registry.gauge_fn("cluster.pending", lambda: 2)
        assert registry.total("cluster.pending") == 2.0

    def test_gauge_fn_exception_reads_none(self):
        registry = MetricsRegistry()

        def broken():
            raise RuntimeError("worker gone")

        registry.gauge_fn("cluster.heartbeat_age", broken)
        (entry,) = registry.snapshot()["series"]
        assert entry["value"] is None
        assert registry.total("cluster.heartbeat_age") == 0.0

    def test_gauge_fn_over_plain_gauge_raises(self):
        registry = MetricsRegistry()
        registry.gauge("cluster.pending").set(1)
        with pytest.raises(ValueError):
            registry.gauge_fn("cluster.pending", lambda: 2)


class TestHistogram:
    def test_percentiles_and_extremes(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("dispatch.latency")
        for value in range(1, 101):
            histogram.observe(value / 100.0)
        read = histogram.read()
        assert read["count"] == 100
        assert read["min"] == pytest.approx(0.01)
        assert read["max"] == pytest.approx(1.0)
        assert read["p50"] == pytest.approx(0.505, abs=0.01)
        assert read["p95"] == pytest.approx(0.955, abs=0.01)
        assert read["p99"] == pytest.approx(0.995, abs=0.01)

    def test_buckets_cover_all_observations(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("dispatch.chunk_size",
                                       buckets=(1, 4, 16))
        for value in (1, 2, 8, 100):
            histogram.observe(value)
        buckets = histogram.read()["buckets"]
        assert sum(buckets.values()) == 4
        assert buckets["+Inf"] == 1

    def test_empty_histogram_reads_none_percentiles(self):
        registry = MetricsRegistry()
        read = registry.histogram("dispatch.latency").read()
        assert read["count"] == 0
        assert read["p50"] is None
        assert read["min"] is None


class TestRegistry:
    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("tasks.completed").inc()
        with pytest.raises(ValueError):
            registry.gauge("tasks.completed")

    def test_cardinality_guard_folds_overflow(self):
        registry = MetricsRegistry(max_series_per_metric=2)
        for node in range(5):
            registry.counter("dispatch.issued", node=f"n{node}").inc()
        snapshot = registry.snapshot()
        assert snapshot["meta"]["folded_series"] == 3
        keys = [s["key"] for s in snapshot["series"]]
        assert "dispatch.issued{overflow=true}" in keys
        assert len(keys) == 3
        # Folded series still count toward the metric's total.
        assert registry.total("dispatch.issued") == 5.0

    def test_total_counts_histogram_observations(self):
        registry = MetricsRegistry()
        registry.histogram("dispatch.latency", backend="thread").observe(0.5)
        registry.histogram("dispatch.latency", backend="process").observe(1.5)
        assert registry.total("dispatch.latency") == 2.0
        assert registry.total("no.such.metric") == 0.0

    def test_snapshot_shape_and_bound_clock(self):
        registry = MetricsRegistry()
        registry.bind_clock(lambda: 42.5)
        registry.counter("tasks.completed").inc(3)
        snapshot = registry.snapshot()
        assert snapshot["meta"]["time"] == 42.5
        assert snapshot["meta"]["wall"] > 0
        (entry,) = snapshot["series"]
        assert entry == {
            "key": "tasks.completed",
            "name": "tasks.completed",
            "labels": {},
            "type": "counter",
            "value": 3.0,
        }
        # Snapshots must be JSON-serialisable as dumped.
        json.dumps(snapshot)

    def test_format_series_key(self):
        assert format_series_key("x", ()) == "x"
        assert format_series_key(
            "dispatch.issued", (("backend", "thread"), ("node", "n1"))
        ) == "dispatch.issued{backend=thread,node=n1}"

    def test_invalid_max_series_raises(self):
        with pytest.raises(ValueError):
            MetricsRegistry(max_series_per_metric=0)

    def test_default_guard_is_generous(self):
        assert DEFAULT_MAX_SERIES >= 32


class TestRunWiring:
    def test_result_metrics_snapshot(self):
        result = Grasp(skeleton=TaskFarm(worker=_worker),
                       grid=_grid()).run(range(16))
        snapshot = result.metrics
        assert snapshot is not None
        names = {entry["name"] for entry in snapshot["series"]}
        assert "dispatch.issued" in names
        assert "dispatch.latency" in names
        assert "tasks.completed" in names
        issued = sum(e["value"] for e in snapshot["series"]
                     if e["name"] == "dispatch.issued")
        resolved = sum(e["value"] for e in snapshot["series"]
                       if e["name"] == "dispatch.resolved")
        assert issued == resolved > 0

    def test_metrics_disabled_returns_none(self):
        config = GraspConfig(metrics=False)
        result = Grasp(skeleton=TaskFarm(worker=_worker), grid=_grid(),
                       config=config).run(range(8))
        assert result.metrics is None

    def test_streaming_metrics_live_snapshot(self):
        run = Grasp(skeleton=TaskFarm(worker=_worker),
                    grid=_grid()).as_completed(range(12))
        collected = [outcome for outcome in run]
        snapshot = run.metrics()
        assert len(collected) == 12
        assert snapshot is not None
        assert any(entry["name"] == "dispatch.issued"
                   for entry in snapshot["series"])

    def test_grasp_metrics_env_dump(self, tmp_path, monkeypatch):
        path = tmp_path / "metrics.json"
        monkeypatch.setenv("GRASP_METRICS", str(path))
        Grasp(skeleton=TaskFarm(worker=_worker), grid=_grid()).run(range(8))
        dumped = json.loads(path.read_text())
        assert isinstance(dumped["series"], list)
        assert dumped["meta"]["wall"] > 0

    def test_metrics_path_config_overrides_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("GRASP_METRICS", str(tmp_path / "ignored.json"))
        path = tmp_path / "explicit.json"
        config = GraspConfig(metrics_path=str(path))
        Grasp(skeleton=TaskFarm(worker=_worker), grid=_grid(),
              config=config).run(range(8))
        assert path.exists()
        assert not (tmp_path / "ignored.json").exists()


class TestCliShow:
    @pytest.fixture()
    def snapshot_path(self, tmp_path):
        registry = MetricsRegistry()
        registry.bind_clock(lambda: 10.0)
        registry.counter("dispatch.issued", backend="thread").inc(6)
        registry.gauge("dispatch.in_flight", backend="thread").set(0)
        for value in (0.01, 0.02, 0.04):
            registry.histogram("dispatch.latency",
                               backend="thread").observe(value)
        path = tmp_path / "snapshot.json"
        path.write_text(json.dumps(registry.snapshot()))
        return str(path)

    def test_show_text(self, snapshot_path, capsys):
        assert main(["show", snapshot_path]) == 0
        out = capsys.readouterr().out
        assert "metrics snapshot" in out
        assert "dispatch.issued{backend=thread}" in out
        assert "histogram" in out

    def test_show_json_round_trips(self, snapshot_path, capsys):
        assert main(["show", snapshot_path, "--format", "json"]) == 0
        loaded = json.loads(capsys.readouterr().out)
        assert loaded == load_snapshot(snapshot_path)

    def test_missing_snapshot_exits_two(self, tmp_path, capsys):
        assert main(["show", str(tmp_path / "nope.json")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_non_snapshot_json_exits_two(self, tmp_path, capsys):
        path = tmp_path / "other.json"
        path.write_text('{"keys": {}}')
        assert main(["show", str(path)]) == 2
        with pytest.raises(MetricsCliError):
            load_snapshot(str(path))
        capsys.readouterr()

    def test_no_arguments_exits_two(self, capsys):
        assert main([]) == 2
        capsys.readouterr()

    def test_help_exits_zero(self, capsys):
        assert main(["--help"]) == 0
        assert "status" in capsys.readouterr().out


class TestCliStatus:
    def test_status_probe_against_live_coordinator(self, capsys):
        with ClusterCoordinator() as coordinator:
            host, port = coordinator.address
            assert main(["status", "--connect", f"{host}:{port}"]) == 0
            text = capsys.readouterr().out
            assert "cluster status" in text
            assert "live workers" in text
            assert main(["status", "--connect", f"{host}:{port}",
                         "--format", "json"]) == 0
            loaded = json.loads(capsys.readouterr().out)
            assert loaded["live_workers"] == 0
            assert "protocol" in loaded

    def test_unreachable_coordinator_exits_two(self, capsys):
        # Port 1 on localhost is essentially never listening.
        assert main(["status", "--connect", "127.0.0.1:1",
                     "--timeout", "0.5"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_bad_address_exits_two(self, capsys):
        assert main(["status", "--connect", "not-an-address"]) == 2
        capsys.readouterr()
