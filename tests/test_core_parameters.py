"""Tests for the GRASP configuration objects."""

from __future__ import annotations

import math

import pytest

from repro.core.parameters import (
    AdaptationAction,
    CalibrationConfig,
    ExecutionConfig,
    GraspConfig,
    SelectionPolicy,
)
from repro.core.ranking import RankingMode
from repro.exceptions import ConfigurationError
from repro.monitor.thresholds import AbsoluteThreshold, RelativeThreshold


class TestCalibrationConfig:
    def test_defaults_valid(self):
        config = CalibrationConfig()
        assert config.sample_per_node == 1
        assert config.ranking is RankingMode.TIME_ONLY
        assert config.selection is SelectionPolicy.CUTOFF

    def test_count_selection_requires_count(self):
        with pytest.raises(ConfigurationError):
            CalibrationConfig(selection=SelectionPolicy.COUNT)
        config = CalibrationConfig(selection=SelectionPolicy.COUNT, select_count=3)
        assert config.select_count == 3

    @pytest.mark.parametrize("kwargs", [
        {"sample_per_node": 0},
        {"select_fraction": 0.0},
        {"select_fraction": 1.5},
        {"cutoff_ratio": 0.5},
        {"min_nodes": 0},
        {"ranking": "time_only"},
        {"selection": "cutoff"},
    ])
    def test_invalid_parameters(self, kwargs):
        with pytest.raises(ConfigurationError):
            CalibrationConfig(**kwargs)


class TestExecutionConfig:
    def test_defaults_valid(self):
        config = ExecutionConfig()
        assert config.adaptation is AdaptationAction.RECALIBRATE
        assert config.monitor_interval == 0

    def test_make_threshold_default_relative(self):
        config = ExecutionConfig(threshold_factor=2.0)
        threshold = config.make_threshold()
        assert isinstance(threshold, RelativeThreshold)
        assert math.isinf(threshold.value())
        threshold.calibrate([1.0])
        assert threshold.value() == pytest.approx(2.0)

    def test_make_threshold_explicit(self):
        explicit = AbsoluteThreshold(z=5.0)
        config = ExecutionConfig(threshold=explicit)
        assert config.make_threshold() is explicit

    @pytest.mark.parametrize("kwargs", [
        {"threshold_factor": 0.0},
        {"threshold": 1.5},
        {"monitor_interval": -1},
        {"adaptation": "recalibrate"},
        {"max_recalibrations": -1},
        {"migration_bytes": -1},
    ])
    def test_invalid_parameters(self, kwargs):
        with pytest.raises(ConfigurationError):
            ExecutionConfig(**kwargs)


class TestGraspConfig:
    def test_defaults(self):
        config = GraspConfig()
        assert isinstance(config.calibration, CalibrationConfig)
        assert isinstance(config.execution, ExecutionConfig)
        assert config.trace

    def test_adaptive_factory(self):
        config = GraspConfig.adaptive(threshold_factor=1.2,
                                      ranking=RankingMode.MULTIVARIATE)
        assert config.execution.threshold_factor == 1.2
        assert config.calibration.ranking is RankingMode.MULTIVARIATE
        assert config.execution.adaptation is AdaptationAction.RECALIBRATE

    def test_non_adaptive_factory(self):
        config = GraspConfig.non_adaptive()
        assert config.execution.adaptation is AdaptationAction.NONE

    @pytest.mark.parametrize("kwargs", [
        {"calibration": "bad"},
        {"execution": None},
        {"name": ""},
    ])
    def test_invalid_parameters(self, kwargs):
        with pytest.raises(ConfigurationError):
            GraspConfig(**kwargs)
